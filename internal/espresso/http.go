package espresso

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"datainfra/internal/schema"
	"datainfra/internal/trace"
)

// Handler exposes the cluster over HTTP — the router tier of Figure IV.1.
// Documents are identified by URIs of the form
//
//	/<database>/<table>/<resource_id>[/<subresource_id>...]
//
// GET returns the document (ETag header set); GET with ?query=field:value
// runs a secondary-index query over the collection; PUT writes (honouring
// If-Match); DELETE removes; POST to /<database>/*/<resource_id> commits a
// multi-table transaction.
type Handler struct {
	clusters map[string]*Cluster
	traces   *trace.Ring
}

// NewHandler serves the given databases.
func NewHandler(clusters ...*Cluster) *Handler {
	h := &Handler{clusters: map[string]*Cluster{}, traces: trace.NewRing(64)}
	for _, c := range clusters {
		h.clusters[c.DB.Schema.Name] = c
	}
	return h
}

// SawTrace reports whether the handler recently served a request carrying
// the trace ID (tests and debugging).
func (h *Handler) SawTrace(id string) bool { return h.traces.Contains(id) }

// TxnItem is one write inside a transactional POST body.
type TxnItem struct {
	Table string         `json:"table"`
	Parts []string       `json:"parts"` // resource_id followed by subresource ids
	Doc   map[string]any `json:"doc"`   // null means delete
}

func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrNoSuchDocument), errors.Is(err, ErrNoSuchTable), errors.Is(err, ErrNoSuchDatabase):
		return http.StatusNotFound
	case errors.Is(err, ErrEtagMismatch):
		return http.StatusPreconditionFailed
	case errors.Is(err, ErrBadURI), errors.Is(err, ErrKeyArity), errors.Is(err, ErrTxnMixedKeys):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotMaster):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), httpStatus(err))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeHTTP routes the request to the master storage node for the resource.
// Every request is counted, timed, and tagged with a trace ID: the caller's
// X-Datainfra-Trace header when present, a fresh ID otherwise. The ID is
// echoed on the response so clients can correlate failures.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(trace.Header)
	if id == "" {
		id = trace.NewID()
	}
	h.traces.Add(id)
	w.Header().Set(trace.Header, id)
	mRequests.With(r.Method).Inc()
	start := time.Now()
	defer func() {
		mRequestLatency.Observe(time.Since(start))
		trace.Logf(id, "espresso %s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	}()

	dbName, key, err := ParseURI(r.URL.Path)
	if err != nil {
		writeErr(w, err)
		return
	}
	c, ok := h.clusters[dbName]
	if !ok {
		writeErr(w, fmt.Errorf("%w: %s", ErrNoSuchDatabase, dbName))
		return
	}
	// Schema URIs (§IV.A: "to evolve a document schema, one simply posts a
	// new version to the schema URI"): /<db>/_schema/<table>.
	if key.Table == "_schema" {
		h.schemaEndpoint(w, r, c, key)
		return
	}
	// The router inspects the URI, applies the database's routing function
	// to the resource_id, consults the cluster manager's routing table and
	// forwards to the master storage node (§IV.B Router).
	node, err := c.Route(key.ResourceID())
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", ErrNotMaster, err))
		return
	}
	switch r.Method {
	case http.MethodGet:
		h.get(w, r, node, key)
	case http.MethodPut:
		h.put(w, r, node, key)
	case http.MethodDelete:
		if err := node.Delete(key, r.Header.Get("If-Match")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPost:
		h.post(w, r, node, key)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// schemaEndpoint serves GET (latest document schema + version) and POST
// (register an evolved schema; incompatible evolutions are rejected with
// 409) for /<db>/_schema/<table>.
func (h *Handler) schemaEndpoint(w http.ResponseWriter, r *http.Request, c *Cluster, key DocKey) {
	if len(key.Parts) != 1 {
		writeErr(w, fmt.Errorf("%w: schema URI is /<db>/_schema/<table>", ErrBadURI))
		return
	}
	table := key.Parts[0]
	switch r.Method {
	case http.MethodGet:
		rec, version, err := c.DB.DocumentSchema(table)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: %s", ErrNoSuchTable, table))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Espresso-Schema-Version", fmt.Sprint(version))
		w.Write(rec.JSON())
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, err)
			return
		}
		rec, err := schema.Parse(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		version, err := c.DB.SetDocumentSchema(table, rec)
		if err != nil {
			// incompatible evolution or unknown table
			status := http.StatusConflict
			if errors.Is(err, ErrNoSuchTable) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"version": version})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// docResponse is the JSON form of a returned document.
type docResponse struct {
	URI           string         `json:"uri"`
	Etag          string         `json:"etag"`
	Timestamp     int64          `json:"timestamp"`
	SchemaVersion int            `json:"schemaVersion"`
	Doc           map[string]any `json:"doc"`
}

func (h *Handler) respRow(node *Node, dbName string, row *Row) (docResponse, error) {
	doc, err := node.Document(row)
	if err != nil {
		return docResponse{}, err
	}
	return docResponse{
		URI:           "/" + dbName + row.Key.String(),
		Etag:          row.Etag,
		Timestamp:     row.Timestamp,
		SchemaVersion: row.SchemaVersion,
		Doc:           doc,
	}, nil
}

func (h *Handler) get(w http.ResponseWriter, r *http.Request, node *Node, key DocKey) {
	dbName := node.Database().Schema.Name
	if q := r.URL.Query().Get("query"); q != "" {
		field, value, ok := strings.Cut(q, ":")
		if !ok {
			writeErr(w, fmt.Errorf("%w: query must be field:value", ErrBadURI))
			return
		}
		value = strings.Trim(value, `"`)
		rows, err := node.Query(key.Table, key.ResourceID(), field, value)
		if err != nil {
			writeErr(w, err)
			return
		}
		out := make([]docResponse, 0, len(rows))
		for _, row := range rows {
			d, err := h.respRow(node, dbName, row)
			if err != nil {
				writeErr(w, err)
				return
			}
			out = append(out, d)
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	ts, ok := node.Database().Tables[key.Table]
	if ok && len(key.Parts) == 1 && ts.KeyDepth() > 1 {
		// collection resource: list every document under the resource_id
		rows, err := node.List(key.Table, key.ResourceID())
		if err != nil {
			writeErr(w, err)
			return
		}
		out := make([]docResponse, 0, len(rows))
		for _, row := range rows {
			d, err := h.respRow(node, dbName, row)
			if err != nil {
				writeErr(w, err)
				return
			}
			out = append(out, d)
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	row, err := node.Get(key)
	if err != nil {
		writeErr(w, err)
		return
	}
	// conditional GET
	if match := r.Header.Get("If-None-Match"); match != "" && match == row.Etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	d, err := h.respRow(node, dbName, row)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("ETag", row.Etag)
	writeJSON(w, http.StatusOK, d)
}

func (h *Handler) put(w http.ResponseWriter, r *http.Request, node *Node, key DocKey) {
	var doc map[string]any
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		writeErr(w, fmt.Errorf("%w: body: %v", ErrBadURI, err))
		return
	}
	row, err := node.Put(key, doc, r.Header.Get("If-Match"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("ETag", row.Etag)
	w.WriteHeader(http.StatusOK)
}

// post handles transactional updates: a POST to a database with a wildcard
// table name, the entity-body containing the individual document updates
// (§IV.A). All updates commit or none do.
func (h *Handler) post(w http.ResponseWriter, r *http.Request, node *Node, key DocKey) {
	if key.Table != "*" {
		writeErr(w, fmt.Errorf("%w: transactions POST to /<db>/*/<resource>", ErrBadURI))
		return
	}
	var items []TxnItem
	if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
		writeErr(w, fmt.Errorf("%w: body: %v", ErrBadURI, err))
		return
	}
	resource := key.ResourceID()
	writes := make([]Write, 0, len(items))
	for _, item := range items {
		parts := item.Parts
		if len(parts) == 0 || parts[0] != resource {
			writeErr(w, fmt.Errorf("%w: item key %v must start with %q", ErrTxnMixedKeys, parts, resource))
			return
		}
		writes = append(writes, Write{Key: DocKey{Table: item.Table, Parts: parts}, Doc: item.Doc})
	}
	rows, err := node.Commit(writes)
	if err != nil {
		writeErr(w, err)
		return
	}
	etags := make([]string, len(rows))
	for i, row := range rows {
		etags[i] = row.Etag
	}
	writeJSON(w, http.StatusOK, map[string]any{"committed": len(rows), "etags": etags})
}
