package espresso

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
	"datainfra/internal/trace"
)

// errRetryableStatus marks responses worth retrying: 5xx, and 503 in
// particular, which the router returns while mastership is failing over
// (§IV.B) — exactly the window a client should ride out with backoff.
var errRetryableStatus = errors.New("espresso: retryable server status")

// ClientDoc is a document as returned by the HTTP API.
type ClientDoc struct {
	URI           string         `json:"uri"`
	Etag          string         `json:"etag"`
	Timestamp     int64          `json:"timestamp"`
	SchemaVersion int            `json:"schemaVersion"`
	Doc           map[string]any `json:"doc"`
}

// HTTPClient is the client side of the Espresso HTTP API (the router tier of
// Figure IV.1, consumed remotely): document gets/puts/deletes, secondary-
// index queries and transactional POSTs, with transient failures and
// failover 503s retried through the resilience layer behind a circuit
// breaker. Application outcomes (404, 412 etag conflicts, 400) surface
// immediately as the package's sentinel errors.
type HTTPClient struct {
	base    string
	hc      *http.Client
	retry   resilience.Policy
	breaker *resilience.Breaker
	trace   atomic.Value // string: session trace ID; "" = fresh ID per request
}

// NewHTTPClient builds a client for baseURL (e.g. "http://router:8080").
// httpClient may be nil for http.DefaultClient.
func NewHTTPClient(baseURL string, httpClient *http.Client) *HTTPClient {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &HTTPClient{
		base: strings.TrimRight(baseURL, "/"),
		hc:   httpClient,
		retry: resilience.Policy{
			MaxAttempts:    4,
			InitialBackoff: 5 * time.Millisecond,
			MaxBackoff:     250 * time.Millisecond,
			Retryable: func(err error) bool {
				return resilience.IsTransient(err) || errors.Is(err, errRetryableStatus)
			},
		},
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: 8,
			OpenTimeout:      250 * time.Millisecond,
		}),
	}
}

// SetTrace pins a trace ID on every subsequent request (sent as the
// X-Datainfra-Trace header). With no pinned ID each request gets a fresh
// one, so server-side logs are always correlatable.
func (c *HTTPClient) SetTrace(id string) { c.trace.Store(id) }

// Trace returns the pinned trace ID, if any.
func (c *HTTPClient) Trace() string {
	if v, ok := c.trace.Load().(string); ok {
		return v
	}
	return ""
}

// SetRetryPolicy overrides the retry policy; call before first use.
func (c *HTTPClient) SetRetryPolicy(p resilience.Policy) {
	if p.Retryable == nil {
		p.Retryable = func(err error) bool {
			return resilience.IsTransient(err) || errors.Is(err, errRetryableStatus)
		}
	}
	c.retry = p
}

func docURI(db, table string, parts []string) string {
	segs := make([]string, 0, 2+len(parts))
	segs = append(segs, db, table)
	segs = append(segs, parts...)
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return "/" + strings.Join(segs, "/")
}

// statusErr maps an HTTP status to the package's sentinel errors so callers
// keep using errors.Is exactly as against a local Node.
func statusErr(status int, body []byte) error {
	msg := strings.TrimSpace(string(body))
	switch {
	case status == http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNoSuchDocument, msg)
	case status == http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %s", ErrEtagMismatch, msg)
	case status == http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadURI, msg)
	case status == http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s: %s", errRetryableStatus, ErrNotMaster, msg)
	case status >= 500:
		return fmt.Errorf("%w: status %d: %s", errRetryableStatus, status, msg)
	default:
		return fmt.Errorf("espresso: status %d: %s", status, msg)
	}
}

// do runs one HTTP exchange under retry + breaker. body is re-created per
// attempt from the byte slice, so retries resend the full payload.
func (c *HTTPClient) do(method, uri string, headers map[string]string, body []byte) (*http.Response, []byte, error) {
	type result struct {
		resp *http.Response
		body []byte
	}
	// Trace IDs are generated at the client edge (§ tracing): one ID covers
	// all retry attempts of this logical request, so the server sees every
	// attempt under the same correlation key.
	tid := c.Trace()
	if tid == "" {
		tid = trace.NewID()
	}
	r, err := resilience.RetryValue(context.Background(), c.retry, func() (result, error) {
		if err := c.breaker.Allow(); err != nil {
			return result{}, err
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+uri, rd)
		if err != nil {
			c.breaker.Record(nil) // our bug, not the server's
			return result{}, err
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		req.Header.Set(trace.Header, tid)
		resp, err := c.hc.Do(req)
		if err != nil {
			c.breaker.Record(err)
			return result{}, err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			c.breaker.Record(err)
			return result{}, err
		}
		if resp.StatusCode >= 500 {
			c.breaker.Record(errRetryableStatus)
		} else {
			// Any complete response, including 4xx/503, proves the server is
			// reachable: only transport-level failures feed the breaker.
			c.breaker.Record(nil)
		}
		if resp.StatusCode >= 400 {
			return result{}, statusErr(resp.StatusCode, payload)
		}
		return result{resp: resp, body: payload}, nil
	})
	if err != nil {
		return nil, nil, trace.Annotate(tid, err)
	}
	return r.resp, r.body, nil
}

// Get fetches one document.
func (c *HTTPClient) Get(db, table string, parts ...string) (*ClientDoc, error) {
	_, body, err := c.do(http.MethodGet, docURI(db, table, parts), nil, nil)
	if err != nil {
		return nil, err
	}
	var d ClientDoc
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, fmt.Errorf("espresso: bad document response: %w", err)
	}
	return &d, nil
}

// Query runs a secondary-index query (?query=field:value) over the
// collection at resource.
func (c *HTTPClient) Query(db, table, resource, field, value string) ([]ClientDoc, error) {
	uri := docURI(db, table, []string{resource}) + "?query=" + url.QueryEscape(field+":"+value)
	_, body, err := c.do(http.MethodGet, uri, nil, nil)
	if err != nil {
		return nil, err
	}
	var out []ClientDoc
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("espresso: bad query response: %w", err)
	}
	return out, nil
}

// Put writes doc; ifMatch (optional) makes the write conditional on the
// current etag. The new etag is returned.
func (c *HTTPClient) Put(db, table string, parts []string, doc map[string]any, ifMatch string) (string, error) {
	payload, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	var headers map[string]string
	if ifMatch != "" {
		headers = map[string]string{"If-Match": ifMatch}
	}
	resp, _, err := c.do(http.MethodPut, docURI(db, table, parts), headers, payload)
	if err != nil {
		return "", err
	}
	return resp.Header.Get("ETag"), nil
}

// Delete removes a document; ifMatch (optional) guards on the etag.
func (c *HTTPClient) Delete(db, table string, parts []string, ifMatch string) error {
	var headers map[string]string
	if ifMatch != "" {
		headers = map[string]string{"If-Match": ifMatch}
	}
	_, _, err := c.do(http.MethodDelete, docURI(db, table, parts), headers, nil)
	return err
}

// Commit posts a multi-table transaction for resource (§IV.A): all items
// commit or none do. The per-row etags are returned in item order.
func (c *HTTPClient) Commit(db, resource string, items []TxnItem) ([]string, error) {
	payload, err := json.Marshal(items)
	if err != nil {
		return nil, err
	}
	_, body, err := c.do(http.MethodPost, docURI(db, "*", []string{resource}), nil, payload)
	if err != nil {
		return nil, err
	}
	var out struct {
		Etags []string `json:"etags"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("espresso: bad commit response: %w", err)
	}
	return out.Etags, nil
}
