package consistency

import (
	"errors"
	"testing"

	"datainfra/internal/vclock"
)

func clockOf(pairs ...uint64) *vclock.Clock {
	c := vclock.New()
	for i := 0; i+1 < len(pairs); i += 2 {
		for v := uint64(0); v < pairs[i+1]; v++ {
			c.Increment(int32(pairs[i]), 0)
		}
	}
	return c
}

func ackedWrite(client int, key, val string, c *vclock.Clock, call, ret int64) *Op {
	return &Op{Client: client, Kind: KindWrite, Key: key, Input: val, Clock: c, Call: call, Return: ret, Outcome: OutcomeOK}
}

func okRead(client int, key string, call, ret int64, obs ...Observed) *Op {
	return &Op{Client: client, Kind: KindRead, Key: key, Found: len(obs) > 0, Output: obs,
		Call: call, Return: ret, Outcome: OutcomeOK}
}

func TestCausalAcceptsQuorumHistory(t *testing.T) {
	c1 := clockOf(0, 1)
	c2 := clockOf(0, 2)
	h := History{
		ackedWrite(0, "k", "a", c1, 1, 2),
		okRead(1, "k", 3, 4, Observed{Value: "a", Clock: c1}),
		ackedWrite(0, "k", "b", c2, 5, 6),
		okRead(1, "k", 7, 8, Observed{Value: "b", Clock: c2}),
	}
	if err := CheckCausalEventual(h); err != nil {
		t.Fatalf("valid quorum history rejected: %v", err)
	}
}

func TestCausalAcceptsConcurrentSiblings(t *testing.T) {
	ca := clockOf(0, 1)
	cb := clockOf(1, 1)
	h := History{
		ackedWrite(0, "k", "a", ca, 1, 4),
		ackedWrite(1, "k", "b", cb, 2, 5),
		okRead(2, "k", 6, 7, Observed{Value: "a", Clock: ca}, Observed{Value: "b", Clock: cb}),
	}
	if err := CheckCausalEventual(h); err != nil {
		t.Fatalf("sibling read rejected: %v", err)
	}
}

func TestCausalRejectsPhantomValue(t *testing.T) {
	h := History{
		ackedWrite(0, "k", "a", clockOf(0, 1), 1, 2),
		okRead(1, "k", 3, 4, Observed{Value: "never-written", Clock: clockOf(0, 1)}),
	}
	if err := CheckCausalEventual(h); !errors.Is(err, ErrCausalViolation) {
		t.Fatalf("phantom accepted: err=%v", err)
	}
}

func TestCausalRejectsMissedAckedWrite(t *testing.T) {
	c1 := clockOf(0, 1)
	c2 := clockOf(0, 2)
	h := History{
		ackedWrite(0, "k", "a", c1, 1, 2),
		ackedWrite(0, "k", "b", c2, 3, 4),
		// Read begins after b's ack but observes only the older a: the read
		// quorum failed to intersect the write quorum.
		okRead(1, "k", 5, 6, Observed{Value: "a", Clock: c1}),
	}
	if err := CheckCausalEventual(h); !errors.Is(err, ErrCausalViolation) {
		t.Fatalf("stale quorum read accepted: err=%v", err)
	}
}

func TestCausalRejectsEmptyReadAfterAck(t *testing.T) {
	h := History{
		ackedWrite(0, "k", "a", clockOf(0, 1), 1, 2),
		okRead(1, "k", 3, 4), // not found, yet a was acked before
	}
	if err := CheckCausalEventual(h); !errors.Is(err, ErrCausalViolation) {
		t.Fatalf("lost acked write accepted: err=%v", err)
	}
}

func TestCausalAllowsUnknownWriteToVanish(t *testing.T) {
	c1 := clockOf(0, 1)
	c2 := clockOf(0, 2)
	h := History{
		ackedWrite(0, "k", "a", c1, 1, 2),
		{Client: 0, Kind: KindWrite, Key: "k", Input: "b", Clock: c2, Call: 3, Return: 4, Outcome: OutcomeUnknown},
		okRead(1, "k", 5, 6, Observed{Value: "a", Clock: c1}),
	}
	if err := CheckCausalEventual(h); err != nil {
		t.Fatalf("vanished unknown write rejected: %v", err)
	}
	// ... and to surface.
	h2 := History{
		ackedWrite(0, "k", "a", c1, 1, 2),
		{Client: 0, Kind: KindWrite, Key: "k", Input: "b", Clock: c2, Call: 3, Return: 4, Outcome: OutcomeUnknown},
		okRead(1, "k", 5, 6, Observed{Value: "b", Clock: c2}),
	}
	if err := CheckCausalEventual(h2); err != nil {
		t.Fatalf("surfaced unknown write rejected: %v", err)
	}
}

func TestCausalRejectsDominatedSiblings(t *testing.T) {
	c1 := clockOf(0, 1)
	c2 := clockOf(0, 2) // descendant of c1
	h := History{
		ackedWrite(0, "k", "a", c1, 1, 2),
		ackedWrite(0, "k", "b", c2, 3, 4),
		okRead(1, "k", 5, 6, Observed{Value: "b", Clock: c2}, Observed{Value: "a", Clock: c1}),
	}
	if err := CheckCausalEventual(h); !errors.Is(err, ErrCausalViolation) {
		t.Fatalf("dominated sibling accepted: err=%v", err)
	}
}

func TestCausalRejectsObservedRejectedWrite(t *testing.T) {
	c1 := clockOf(0, 1)
	h := History{
		{Client: 0, Kind: KindWrite, Key: "k", Input: "a", Clock: c1, Call: 1, Return: 2, Outcome: OutcomeFailed},
		okRead(1, "k", 3, 4, Observed{Value: "a", Clock: c1}),
	}
	if err := CheckCausalEventual(h); !errors.Is(err, ErrCausalViolation) {
		t.Fatalf("observed definitely-rejected write accepted: err=%v", err)
	}
}
