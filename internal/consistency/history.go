package consistency

import (
	"fmt"
	"sync"
	"sync/atomic"

	"datainfra/internal/vclock"
)

// Kind is the operation type of a recorded op.
type Kind uint8

// Operation kinds.
const (
	KindRead Kind = iota
	KindWrite
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Outcome classifies how an operation completed. The distinction matters for
// writes: a failed quorum write may still have reached some replicas, so the
// checkers must consider both possibilities, while a definitely-rejected
// write (e.g. an optimistic-lock conflict) provably left no trace.
type Outcome uint8

// Outcomes.
const (
	// OutcomeOK: the operation was acknowledged.
	OutcomeOK Outcome = iota
	// OutcomeUnknown: the operation failed in a way that may or may not have
	// taken effect (timeout, partial quorum, dropped connection).
	OutcomeUnknown
	// OutcomeFailed: the operation definitely did not take effect.
	OutcomeFailed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeUnknown:
		return "unknown"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Observed is one version a read returned. Voldemort reads may return
// several concurrent versions, each carrying its vector clock; single-valued
// systems leave Clock nil and return at most one Observed.
type Observed struct {
	Value string
	Clock *vclock.Clock // nil when the system has no version vector
}

// Op is one completed (or still pending, until Finalize) operation in a
// history: who did what to which key, what came back, and the logical
// invocation/response timestamps that define the real-time partial order.
type Op struct {
	Client int
	Kind   Kind
	Key    string
	// Input is the written value (writes only).
	Input string
	// Clock is the version vector the write was issued with (writes against
	// vector-clocked stores; nil elsewhere).
	Clock *vclock.Clock
	// Output holds the versions a read returned (empty for not-found).
	Output []Observed
	// Found reports whether a read found the key at all.
	Found bool
	// Call and Return are logical timestamps from the recorder's global
	// counter: Call < Return always, and op A precedes op B in real time iff
	// A.Return < B.Call. A pending op keeps Return == PendingReturn.
	Call, Return int64
	Outcome      Outcome
}

// PendingReturn marks an operation whose response never arrived; it is
// ordered after every completed operation.
const PendingReturn = int64(1) << 62

// String renders the op for failure messages.
func (o *Op) String() string {
	switch o.Kind {
	case KindWrite:
		return fmt.Sprintf("client %d write(%s=%q) [%d,%d] %s", o.Client, o.Key, o.Input, o.Call, o.Return, o.Outcome)
	default:
		vals := make([]string, 0, len(o.Output))
		for _, ob := range o.Output {
			vals = append(vals, ob.Value)
		}
		return fmt.Sprintf("client %d read(%s)=%q [%d,%d] %s", o.Client, o.Key, vals, o.Call, o.Return, o.Outcome)
	}
}

// History is a set of recorded operations. It is not ordered beyond the
// Call/Return timestamps carried by each op.
type History []*Op

// PerKey partitions the history by key — read/write register models treat
// keys as independent registers.
func (h History) PerKey() map[string]History {
	out := map[string]History{}
	for _, op := range h {
		out[op.Key] = append(out[op.Key], op)
	}
	return out
}

// Writes returns the write ops of the history.
func (h History) Writes() History {
	var out History
	for _, op := range h {
		if op.Kind == KindWrite {
			out = append(out, op)
		}
	}
	return out
}

// Recorder collects a concurrent history. Invoke stamps the invocation with
// the next logical timestamp; the returned PendingOp's Return stamps the
// response. Both are safe for concurrent use by many client goroutines.
type Recorder struct {
	clock atomic.Int64

	mu  sync.Mutex
	ops []*Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// PendingOp is an invoked-but-unanswered operation.
type PendingOp struct {
	rec  *Recorder
	op   *Op
	done atomic.Bool
}

// Invoke records the invocation of an operation and returns its pending
// handle. For writes, input is the value being written (ignored for reads).
func (r *Recorder) Invoke(client int, kind Kind, key, input string) *PendingOp {
	op := &Op{
		Client:  client,
		Kind:    kind,
		Key:     key,
		Input:   input,
		Call:    r.clock.Add(1),
		Return:  PendingReturn,
		Outcome: OutcomeUnknown,
	}
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	return &PendingOp{rec: r, op: op}
}

// SetClock attaches the version vector a write was issued with (call before
// Return so checkers never observe a half-recorded op).
func (p *PendingOp) SetClock(c *vclock.Clock) {
	if c != nil {
		p.op.Clock = c.Clone()
	}
}

// Return records the response: the outcome, and for reads the observed
// versions. Calling Return twice is a bug in the harness and panics.
func (p *PendingOp) Return(outcome Outcome, found bool, observed ...Observed) {
	if !p.done.CompareAndSwap(false, true) {
		panic("consistency: PendingOp.Return called twice")
	}
	// Copy the observations before publishing the response timestamp.
	p.op.Output = append([]Observed(nil), observed...)
	p.op.Found = found
	p.op.Outcome = outcome
	p.op.Return = p.rec.clock.Add(1)
}

// History snapshots the recorded history. Operations still pending keep
// Return == PendingReturn and Outcome == OutcomeUnknown, i.e. "may have
// taken effect at any later time" — exactly how the checkers treat an op
// whose response was lost.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(History, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len reports how many operations have been invoked.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
