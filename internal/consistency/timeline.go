package consistency

import (
	"errors"
	"fmt"
	"sort"
)

// Declarative timeline checkers for the three log-shaped contracts of the
// paper: Espresso's per-key timeline consistency (§IV.B — a slave applies
// the master's commit stream in commit order and never shows a key going
// backwards), Kafka's partition log contiguity and ordering (§V.B — offsets
// are byte positions, increasing and gapless, and consumption replays the
// produce order exactly), and Databus's windowed SCN monotonicity (§III.C —
// delivery never rewinds, checkpoints advance only at transaction
// boundaries, and every committed transaction at or below the checkpoint was
// delivered).

// Timeline errors.
var (
	ErrTimelineViolation = errors.New("consistency: espresso timeline violation")
	ErrLogViolation      = errors.New("consistency: kafka log violation")
	ErrStreamViolation   = errors.New("consistency: databus stream violation")
)

// --- Espresso: per-key SCN timeline -----------------------------------------

// TimelineEntry is one applied change: the commit SCN, the document key and
// the etag identifying the exact version.
type TimelineEntry struct {
	SCN  int64
	Key  string
	Etag string
}

// Timeline pairs a master's commit order with the apply order observed on a
// replica of the same partition.
type Timeline struct {
	Partition int
	Master    []TimelineEntry // commit order on the master
	Replica   []TimelineEntry // apply order on the slave
}

// CheckEspressoTimeline verifies timeline consistency for one partition:
//
//  1. The master's commit stream is SCN-ordered (non-decreasing; one
//     transaction's rows share an SCN).
//  2. Every replica apply corresponds to a master commit (no invented rows).
//  3. Per key, the replica applies versions in master commit order — a
//     key never goes backwards on a slave (duplicates from idempotent
//     redelivery are legal, rewinds are not).
//  4. Completeness below the replica head: every master commit with SCN
//     strictly below the replica's highest applied SCN was applied at least
//     once (the partially-applied head transaction may still be in flight).
func CheckEspressoTimeline(t Timeline) error {
	for i := 1; i < len(t.Master); i++ {
		if t.Master[i].SCN < t.Master[i-1].SCN {
			return fmt.Errorf("%w: partition %d: master commit order rewound: SCN %d after %d",
				ErrTimelineViolation, t.Partition, t.Master[i].SCN, t.Master[i-1].SCN)
		}
	}
	type ident struct {
		scn  int64
		key  string
		etag string
	}
	pos := map[ident]int{} // master position of each committed version
	for i, e := range t.Master {
		pos[ident{e.SCN, e.Key, e.Etag}] = i
	}
	lastPerKey := map[string]int{}
	var maxApplied int64
	for _, e := range t.Replica {
		p, ok := pos[ident{e.SCN, e.Key, e.Etag}]
		if !ok {
			return fmt.Errorf("%w: partition %d: replica applied SCN %d key %q etag %q that the master never committed",
				ErrTimelineViolation, t.Partition, e.SCN, e.Key, e.Etag)
		}
		if prev, seen := lastPerKey[e.Key]; seen && p < prev {
			return fmt.Errorf("%w: partition %d: key %q went backwards on the replica: master position %d after %d",
				ErrTimelineViolation, t.Partition, e.Key, p, prev)
		}
		lastPerKey[e.Key] = p
		if e.SCN > maxApplied {
			maxApplied = e.SCN
		}
	}
	applied := map[ident]bool{}
	for _, e := range t.Replica {
		applied[ident{e.SCN, e.Key, e.Etag}] = true
	}
	for _, e := range t.Master {
		if e.SCN < maxApplied && !applied[ident{e.SCN, e.Key, e.Etag}] {
			return fmt.Errorf("%w: partition %d: master commit SCN %d key %q never applied though replica reached SCN %d",
				ErrTimelineViolation, t.Partition, e.SCN, e.Key, maxApplied)
		}
	}
	return nil
}

// --- Kafka: partition offset contiguity and ordering ------------------------

// ProducedMsg is one acknowledged produce: the offset the broker assigned
// and the payload.
type ProducedMsg struct {
	Offset  int64
	Payload string
}

// ConsumedMsg is one delivered message with the offset to resume from.
type ConsumedMsg struct {
	NextOffset int64
	Payload    string
}

// KafkaPartition pairs a partition's acknowledged produces with a full
// sequential consumption of the log.
type KafkaPartition struct {
	Topic     string
	Partition int
	Earliest  int64 // first valid offset when consumption started
	Latest    int64 // log end offset when consumption finished
	Produced  []ProducedMsg
	Consumed  []ConsumedMsg // in consumption order
}

// CheckKafkaLog verifies the partition log contract:
//
//  1. Acked offsets are unique and within [Earliest, Latest) — two produces
//     can never be acknowledged at the same log position.
//  2. Consumption is offset-monotone: NextOffset strictly increases.
//  3. Consumption is complete and in produce order: the consumed payload
//     sequence equals the produced payloads sorted by acked offset, and the
//     final NextOffset reaches the log end — no gaps, no duplicates, no
//     reordering, no invented messages.
func CheckKafkaLog(p KafkaPartition) error {
	where := fmt.Sprintf("%s/%d", p.Topic, p.Partition)
	prod := append([]ProducedMsg(nil), p.Produced...)
	sort.Slice(prod, func(i, j int) bool { return prod[i].Offset < prod[j].Offset })
	for i := range prod {
		if i > 0 && prod[i].Offset == prod[i-1].Offset {
			return fmt.Errorf("%w: %s: two produces acked at offset %d (%q and %q)",
				ErrLogViolation, where, prod[i].Offset, prod[i-1].Payload, prod[i].Payload)
		}
		if prod[i].Offset < p.Earliest || prod[i].Offset >= p.Latest {
			return fmt.Errorf("%w: %s: acked offset %d outside the log [%d,%d)",
				ErrLogViolation, where, prod[i].Offset, p.Earliest, p.Latest)
		}
	}
	last := p.Earliest
	for _, c := range p.Consumed {
		if c.NextOffset <= last {
			return fmt.Errorf("%w: %s: consumption rewound: NextOffset %d after %d",
				ErrLogViolation, where, c.NextOffset, last)
		}
		last = c.NextOffset
	}
	if len(p.Consumed) != len(prod) {
		return fmt.Errorf("%w: %s: consumed %d messages, produced %d",
			ErrLogViolation, where, len(p.Consumed), len(prod))
	}
	for i := range prod {
		if p.Consumed[i].Payload != prod[i].Payload {
			return fmt.Errorf("%w: %s: message %d out of order: consumed %q, produce order says %q",
				ErrLogViolation, where, i, p.Consumed[i].Payload, prod[i].Payload)
		}
	}
	if len(p.Consumed) > 0 && p.Consumed[len(p.Consumed)-1].NextOffset != p.Latest {
		return fmt.Errorf("%w: %s: consumption stopped at %d, log end is %d: gap in the log",
			ErrLogViolation, where, p.Consumed[len(p.Consumed)-1].NextOffset, p.Latest)
	}
	return nil
}

// --- Kafka: ISR replication and loss-free failover --------------------------

// ReplicatedPartition pairs the high-watermark-acknowledged produces of a
// replicated partition with a sequential consumption taken after any number
// of leader failovers. Offsets are physical byte positions, so an acked
// message must be served at exactly the offset its ack named, by whichever
// replica leads now.
type ReplicatedPartition struct {
	Topic     string
	Partition int
	Start     int64         // offset consumption began at
	End       int64         // log end when consumption finished (-1: don't check)
	Acked     []ProducedMsg // produces acknowledged at the high watermark
	Consumed  []ConsumedMsg // sequential consumption order from Start
}

// CheckKafkaReplicated verifies the ISR replication contract:
//
//  1. Acked offsets are unique — the leader never acknowledges two produces
//     at the same log position, across failovers included.
//  2. Consumption is offset-monotone and gapless: each message's start
//     offset is the previous message's NextOffset, and the final NextOffset
//     reaches End.
//  3. Loss-free failover: every acked message at or after Start is consumed
//     at exactly its acked offset with exactly its acked payload. A message
//     acknowledged at the high watermark survives any leader change, at an
//     unchanged physical offset.
//
// Consumed messages that were never acked are legal: produce retries across
// a failover can land twice (at-least-once), and a new leader may expose
// messages the old leader replicated but never acknowledged. Only loss or
// relocation of acked data is a violation.
func CheckKafkaReplicated(p ReplicatedPartition) error {
	where := fmt.Sprintf("%s/%d", p.Topic, p.Partition)
	acked := append([]ProducedMsg(nil), p.Acked...)
	sort.Slice(acked, func(i, j int) bool { return acked[i].Offset < acked[j].Offset })
	for i := 1; i < len(acked); i++ {
		if acked[i].Offset == acked[i-1].Offset {
			return fmt.Errorf("%w: %s: two produces acked at offset %d (%q and %q)",
				ErrLogViolation, where, acked[i].Offset, acked[i-1].Payload, acked[i].Payload)
		}
	}
	// Walk the consumption chain, reconstructing each message's start
	// offset from its predecessor's NextOffset.
	at := p.Start
	served := map[int64]string{}
	for _, c := range p.Consumed {
		if c.NextOffset <= at {
			return fmt.Errorf("%w: %s: consumption rewound: NextOffset %d at offset %d",
				ErrLogViolation, where, c.NextOffset, at)
		}
		served[at] = c.Payload
		at = c.NextOffset
	}
	if p.End >= 0 && len(p.Consumed) > 0 && at != p.End {
		return fmt.Errorf("%w: %s: consumption stopped at %d, log end is %d: gap in the log",
			ErrLogViolation, where, at, p.End)
	}
	for _, a := range acked {
		if a.Offset < p.Start {
			continue
		}
		got, ok := served[a.Offset]
		if !ok {
			return fmt.Errorf("%w: %s: acked message at offset %d lost after failover (no message starts there)",
				ErrLogViolation, where, a.Offset)
		}
		if got != a.Payload {
			return fmt.Errorf("%w: %s: offset %d served %q, ack said %q",
				ErrLogViolation, where, a.Offset, got, a.Payload)
		}
	}
	return nil
}

// --- Databus: windowed SCN monotonicity -------------------------------------

// StreamObs is one observation in a Databus client's delivery stream: either
// a delivered event or a checkpoint callback, in the order the consumer saw
// them.
type StreamObs struct {
	SCN        int64
	Checkpoint bool // a checkpoint callback rather than an event delivery
	EndOfTxn   bool // event closes its transaction window
}

// CheckSCNStream verifies windowed SCN monotonicity of a consumption run:
//
//  1. Committed SCNs (the source's commit order) strictly increase.
//  2. Delivered SCNs never decrease — redelivery of an incomplete window may
//     repeat an SCN, but the stream never rewinds past it.
//  3. Every delivered SCN was actually committed (no phantom events).
//  4. Checkpoints strictly increase and land only on window boundaries: a
//     checkpoint at SCN s immediately follows a delivered event with SCN s
//     and EndOfTxn set.
//  5. At-least-once below the checkpoint: every committed transaction with
//     SCN at or below the final checkpoint was delivered with its full event
//     count.
func CheckSCNStream(committed map[int64]int, commitOrder []int64, stream []StreamObs) error {
	for i := 1; i < len(commitOrder); i++ {
		if commitOrder[i] <= commitOrder[i-1] {
			return fmt.Errorf("%w: source commit order not strictly increasing: SCN %d after %d",
				ErrStreamViolation, commitOrder[i], commitOrder[i-1])
		}
	}
	var lastDelivered, lastCheckpoint int64
	lastWasWindowEnd := false
	delivered := map[int64]int{}
	for i, obs := range stream {
		if obs.Checkpoint {
			if obs.SCN <= lastCheckpoint {
				return fmt.Errorf("%w: checkpoint rewound: SCN %d after %d", ErrStreamViolation, obs.SCN, lastCheckpoint)
			}
			if !lastWasWindowEnd || obs.SCN != lastDelivered {
				return fmt.Errorf("%w: checkpoint at SCN %d not on a window boundary (last delivery SCN %d, endOfTxn=%v)",
					ErrStreamViolation, obs.SCN, lastDelivered, lastWasWindowEnd)
			}
			lastCheckpoint = obs.SCN
			continue
		}
		if _, ok := committed[obs.SCN]; !ok {
			return fmt.Errorf("%w: delivery %d carries SCN %d that was never committed", ErrStreamViolation, i, obs.SCN)
		}
		if obs.SCN < lastDelivered {
			return fmt.Errorf("%w: delivery rewound: SCN %d after %d", ErrStreamViolation, obs.SCN, lastDelivered)
		}
		lastDelivered = obs.SCN
		lastWasWindowEnd = obs.EndOfTxn
		delivered[obs.SCN]++
	}
	for scn, want := range committed {
		if scn > lastCheckpoint {
			continue
		}
		if delivered[scn] < want {
			return fmt.Errorf("%w: txn SCN %d delivered %d of %d events though checkpoint reached %d",
				ErrStreamViolation, scn, delivered[scn], want, lastCheckpoint)
		}
	}
	return nil
}
