package consistency

import (
	"fmt"
	"sort"
)

// Checker for Kafka cross-cluster mirroring (DESIGN.md §11): several
// datacenter-local source clusters are mirrored into one aggregate
// destination by kafka.MirrorMaker in global-ordering mode, every mirrored
// message stamped with its origin cluster ID and source-log position. The
// model demands that mirroring loses nothing that a source acknowledged at
// its high watermark, invents nothing it cannot account for, and preserves
// per-key causal order — where a "key" lives on one partition of one origin,
// so per-key order is per-(origin, source partition) order.

// MirroredMsg is one message consumed from the aggregate (destination)
// cluster, decoded from its kafka.MirrorEnvelope: the origin cluster ID, the
// source partition, the source-log position (Seq = source offset, Sub = index
// within a compressed wrapper at that offset) and the original payload.
type MirroredMsg struct {
	Origin    string
	Partition int
	Seq       int64
	Sub       int
	Payload   string
}

// MirroredPartition pairs the high-watermark-acknowledged produces of one
// topic/partition on every source cluster with a sequential consumption of
// the same partition at the destination.
//
// Acked maps origin cluster ID → that source's acknowledged produces
// (ProducedMsg.Offset is the source log offset, which the envelope carries
// as Seq). The acked produces must be single uncompressed messages — the
// shape the verify harness produces — so each ack names exactly one
// (origin, Seq) with Sub 0.
type MirroredPartition struct {
	Topic     string
	Partition int
	Acked     map[string][]ProducedMsg
	Mirrored  []MirroredMsg // destination consumption order
}

// seqSub orders source-log positions within one origin partition.
type seqSub struct {
	seq int64
	sub int
}

func (a seqSub) before(b seqSub) bool {
	return a.seq < b.seq || (a.seq == b.seq && a.sub < b.sub)
}

// CheckKafkaMirrored verifies the mirroring contract:
//
//  1. Provenance: every mirrored message names an origin the checker was
//     given, and the mirror preserves the partition index. A message whose
//     (origin, Seq) matches an acknowledged produce must carry exactly the
//     acknowledged payload (Sub 0 — acked produces are single messages).
//     Mirrored messages at source positions that were never acknowledged are
//     legal: a producer retry across a source failover appends twice, and
//     only one append gets the ack.
//  2. Duplicate identity: redelivery after a mirror restart is legal
//     (at-least-once), but every copy of a source position must be
//     byte-identical — "exactly-once-or-duplicated", never mutated.
//  3. Completeness: every acknowledged produce of every origin appears at
//     the destination at least once. A message HW-acked at a source cannot
//     be lost by mirroring, mirror restarts included.
//  4. Per-key causal order: for each origin, a consumer that drops
//     duplicates (keeps the first copy of each source position) sees that
//     origin's positions in strictly increasing (Seq, Sub) order — the
//     source partition's order, which contains every per-key order. Later
//     duplicates may rewind (a redelivered suffix), first occurrences may
//     not.
func CheckKafkaMirrored(p MirroredPartition) error {
	where := fmt.Sprintf("%s/%d", p.Topic, p.Partition)

	// Index the acked produces by (origin, offset); offsets are unique
	// within a source log (CheckKafkaReplicated separately enforces this on
	// the sources).
	type ackKey struct {
		origin string
		seq    int64
	}
	acked := map[ackKey]string{}
	for origin, msgs := range p.Acked {
		for _, a := range msgs {
			acked[ackKey{origin, a.Offset}] = a.Payload
		}
	}

	firstSeen := map[string]map[seqSub]string{} // origin → position → payload of first copy
	lastFirst := map[string]seqSub{}            // origin → highest first-occurrence position
	for i, m := range p.Mirrored {
		if _, known := p.Acked[m.Origin]; !known {
			return fmt.Errorf("%w: %s: message %d claims unknown origin %q",
				ErrLogViolation, where, i, m.Origin)
		}
		if m.Partition != p.Partition {
			return fmt.Errorf("%w: %s: message %d from origin %q carries source partition %d",
				ErrLogViolation, where, i, m.Origin, m.Partition)
		}
		pos := seqSub{m.Seq, m.Sub}
		if want, isAcked := acked[ackKey{m.Origin, m.Seq}]; isAcked && m.Sub == 0 && m.Payload != want {
			return fmt.Errorf("%w: %s: origin %q offset %d mirrored as %q, ack said %q",
				ErrLogViolation, where, m.Origin, m.Seq, m.Payload, want)
		}
		seen := firstSeen[m.Origin]
		if seen == nil {
			seen = map[seqSub]string{}
			firstSeen[m.Origin] = seen
		}
		if prev, dup := seen[pos]; dup {
			if prev != m.Payload {
				return fmt.Errorf("%w: %s: origin %q offset %d/%d duplicated with different payloads (%q then %q)",
					ErrLogViolation, where, m.Origin, m.Seq, m.Sub, prev, m.Payload)
			}
			continue // a faithful duplicate; may legally rewind
		}
		if last, any := lastFirst[m.Origin]; any && !last.before(pos) {
			return fmt.Errorf("%w: %s: origin %q causal order broken: position %d/%d first seen after %d/%d",
				ErrLogViolation, where, m.Origin, m.Seq, m.Sub, last.seq, last.sub)
		}
		seen[pos] = m.Payload
		lastFirst[m.Origin] = pos
	}

	// Completeness: walk acks in offset order so the error names the
	// earliest loss.
	origins := make([]string, 0, len(p.Acked))
	for origin := range p.Acked {
		origins = append(origins, origin)
	}
	sort.Strings(origins)
	for _, origin := range origins {
		msgs := append([]ProducedMsg(nil), p.Acked[origin]...)
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Offset < msgs[j].Offset })
		seen := firstSeen[origin]
		for _, a := range msgs {
			if _, ok := seen[seqSub{a.Offset, 0}]; !ok {
				return fmt.Errorf("%w: %s: origin %q acked message at offset %d (%q) never reached the destination",
					ErrLogViolation, where, origin, a.Offset, a.Payload)
			}
		}
	}
	return nil
}
