package consistency

import (
	"errors"
	"fmt"

	"datainfra/internal/vclock"
)

// Eventual + causal checking for Voldemort's model (§II.B): the store is not
// a linearizable register — concurrent writers fork sibling versions and
// reads return every maximal version — but the R+W>N quorum contract still
// pins down three checkable promises over a recorded history:
//
//  1. No phantoms: every version a read returns was actually written, and
//     the write had been invoked before the read returned.
//  2. Acked visibility (the quorum-intersection rule): a successful read
//     invoked after an acknowledged write returned must observe that write's
//     version or a causal descendant of it — read quorums intersect write
//     quorums, so an acked write can be overwritten but never missed.
//  3. Sibling maximality: the versions one read returns are pairwise
//     concurrent under their vector clocks; returning a version together
//     with its own ancestor means conflict resolution is broken.
//
// Writes with OutcomeUnknown are exempt from rule 2 (they may have reached
// any subset of replicas) but still count as legitimate sources for rule 1 —
// partial writes surfacing later is Dynamo behaviour, not a violation.

// ErrCausalViolation is wrapped by every eventual+causal violation.
var ErrCausalViolation = errors.New("consistency: eventual+causal violation")

// CheckCausalEventual verifies rules 1–3 for every key's sub-history.
func CheckCausalEventual(h History) error {
	for key, ops := range h.PerKey() {
		if err := checkCausalKey(key, ops); err != nil {
			return err
		}
	}
	return nil
}

func checkCausalKey(key string, ops History) error {
	// Index the writes: which values exist, and when each was invoked.
	type writeInfo struct{ op *Op }
	writes := map[string]writeInfo{}
	for _, op := range ops {
		if op.Kind != KindWrite {
			continue
		}
		if _, dup := writes[op.Input]; dup {
			return fmt.Errorf("%w: key %q: value %q written twice; the generator must write unique values", ErrCausalViolation, key, op.Input)
		}
		writes[op.Input] = writeInfo{op: op}
	}

	for _, r := range ops {
		if r.Kind != KindRead || r.Outcome != OutcomeOK {
			continue
		}
		// Rule 1: no phantoms.
		for _, ob := range r.Output {
			w, known := writes[ob.Value]
			if !known {
				return fmt.Errorf("%w: key %q: %s observed value %q that no write produced", ErrCausalViolation, key, r, ob.Value)
			}
			if w.op.Outcome == OutcomeFailed {
				return fmt.Errorf("%w: key %q: %s observed value %q from a definitely-rejected write", ErrCausalViolation, key, r, ob.Value)
			}
			if w.op.Call >= r.Return {
				return fmt.Errorf("%w: key %q: %s observed value %q before its write was invoked", ErrCausalViolation, key, r, ob.Value)
			}
		}
		// Rule 3: siblings must be pairwise concurrent.
		for i := 0; i < len(r.Output); i++ {
			for j := i + 1; j < len(r.Output); j++ {
				ci, cj := r.Output[i].Clock, r.Output[j].Clock
				if ci == nil || cj == nil {
					continue
				}
				if rel := ci.Compare(cj); rel != vclock.Concurrent {
					return fmt.Errorf("%w: key %q: %s returned non-concurrent siblings %q %s %q",
						ErrCausalViolation, key, r, r.Output[i].Value, rel, r.Output[j].Value)
				}
			}
		}
		// Rule 2: every acked write that completed before this read began
		// must be covered by some observed version's clock.
		for _, op := range ops {
			if op.Kind != KindWrite || op.Outcome != OutcomeOK || op.Clock == nil {
				continue
			}
			if op.Return >= r.Call {
				continue // concurrent with, or after, the read
			}
			if !covered(op.Clock, r.Output) {
				return fmt.Errorf("%w: key %q: %s missed acked write %s (clock %s): quorum intersection violated",
					ErrCausalViolation, key, r, op, op.Clock)
			}
		}
	}
	return nil
}

// covered reports whether some observed version's clock equals or dominates
// c.
func covered(c *vclock.Clock, observed []Observed) bool {
	for _, ob := range observed {
		if ob.Clock == nil {
			continue
		}
		if rel := ob.Clock.Compare(c); rel == vclock.Equal || rel == vclock.After {
			return true
		}
	}
	return false
}
