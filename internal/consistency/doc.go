// Package consistency implements history-based consistency checking: a
// concurrent-history recorder (invocation/response events stamped with
// logical timestamps) plus checkers that decide whether a recorded history
// satisfies a formal model — Wing & Gong linearizability for read/write
// registers, a vector-clock-aware "eventual + causal" relaxation matching
// Voldemort's R+W>N quorum semantics, and declarative timeline models for
// Espresso per-key SCN order, Kafka partition offset contiguity and Databus
// windowed SCN monotonicity.
//
// The Kafka models grow with the replication stack: CheckKafkaLog demands
// offset contiguity and exact produce/consume equality on a single broker,
// CheckKafkaReplicated relaxes that to the ISR contract (every
// high-watermark-acked message served at exactly its acked offset across a
// failover, at-least-once retry duplicates tolerated, loss never —
// DESIGN.md §10), and CheckKafkaMirrored extends it across clusters
// (DESIGN.md §11): every acked message of every origin reaches the
// aggregate, duplicates from mirror restarts are byte-identical, and each
// origin partition's causal order survives in the first occurrences.
//
// The chaos suites of internal/resilience assert hand-picked invariants per
// scenario; this package instead records everything concurrent clients did
// and observed, and checks the whole history against the model the paper
// promises. See DESIGN.md §7 and the generator-driven harness in
// consistency_e2e_test.go (`make verify`).
package consistency
