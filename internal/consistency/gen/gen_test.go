package gen

import (
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"datainfra/internal/consistency"
)

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Clients: 3, Ops: 50, Keys: 6, SingleWriterKeys: 2}
	a, b := Plan(cfg), Plan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := Plan(Config{Seed: 43, Clients: 3, Ops: 50, Keys: 6, SingleWriterKeys: 2})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanUniqueValues(t *testing.T) {
	plans := Plan(Config{Seed: 7, Clients: 4, Ops: 200, Keys: 8})
	seen := map[string]bool{}
	for _, script := range plans {
		for _, op := range script {
			if op.Read {
				continue
			}
			if seen[op.Value] {
				t.Fatalf("value %q planned twice", op.Value)
			}
			seen[op.Value] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("plan contains no writes")
	}
}

func TestPlanSingleWriterOwnership(t *testing.T) {
	cfg := Config{Seed: 11, Clients: 4, Ops: 300, Keys: 8, SingleWriterKeys: 4}
	plans := Plan(cfg)
	for c, script := range plans {
		for _, op := range script {
			if op.Read || !strings.HasPrefix(op.Key, "sw") {
				continue
			}
			ki, err := strconv.Atoi(strings.TrimPrefix(op.Key, "sw"))
			if err != nil {
				t.Fatalf("bad single-writer key %q", op.Key)
			}
			if ki%cfg.Clients != c {
				t.Fatalf("client %d wrote single-writer key %s owned by client %d", c, op.Key, ki%cfg.Clients)
			}
		}
	}
}

// A no-faults in-memory register driven by Run must yield a history that
// both checkers accept — the harness itself must not invent violations.
func TestRunRecordsCleanHistory(t *testing.T) {
	var mu sync.Mutex
	state := map[string]string{}
	rec := consistency.NewRecorder()
	cfg := Config{Seed: 5, Clients: 4, Ops: 100, Keys: 4}
	Run(rec, cfg, func(i int) Client {
		return memClient{mu: &mu, state: state}
	})
	h := rec.History()
	if rec.Len() != 4*100 {
		t.Fatalf("recorded %d ops, want 400", rec.Len())
	}
	if err := consistency.CheckLinearizable(h); err != nil {
		t.Fatalf("harness-recorded register history rejected: %v", err)
	}
	if err := consistency.CheckCausalEventual(h); err != nil {
		t.Fatalf("causal check rejected clean history: %v", err)
	}
}

type memClient struct {
	mu    *sync.Mutex
	state map[string]string
}

func (m memClient) Read(key string) ([]consistency.Observed, bool, consistency.Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.state[key]
	if !ok {
		return nil, false, consistency.OutcomeOK
	}
	return []consistency.Observed{{Value: v}}, true, consistency.OutcomeOK
}

func (m memClient) Write(_ *consistency.PendingOp, key, value string) consistency.Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state[key] = value
	return consistency.OutcomeOK
}

func TestPayloadsDeterministicUnique(t *testing.T) {
	a := Payloads(9, "p", 500)
	b := Payloads(9, "p", 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("payloads not seed-stable")
	}
	seen := map[string]bool{}
	for _, p := range a {
		if seen[p] {
			t.Fatalf("duplicate payload %q", p)
		}
		seen[p] = true
	}
}
