// Package gen is the seeded, generator-driven workload harness behind `make
// verify`: it deterministically plans per-client operation scripts from a
// seed, runs them concurrently against a system adapter while recording
// every invocation and response into a consistency.Recorder, and leaves the
// interleaving — the only nondeterministic part — to the scheduler and the
// fault injector. The checkers then accept any legal interleaving, so a
// failure is a real consistency violation, not a flaky schedule.
package gen

import (
	"fmt"
	"math/rand"
	"sync"

	"datainfra/internal/consistency"
)

// Config plans a register workload.
type Config struct {
	Seed    int64
	Clients int     // concurrent clients; default 4
	Ops     int     // operations per client; default 100
	Keys    int     // distinct keys; default 8
	ReadPct float64 // fraction of reads; default 0.5
	// SingleWriterKeys reserves this many of the keys for exclusive writers
	// (key i is written only by client i%Clients). Reads remain unrestricted.
	// Single-writer keys keep a vector-clocked store's per-key history free
	// of sibling forks, which is what makes the register linearizability
	// checker applicable to it.
	SingleWriterKeys int
}

func (c *Config) withDefaults() {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Ops == 0 {
		c.Ops = 100
	}
	if c.Keys == 0 {
		c.Keys = 8
	}
	if c.ReadPct == 0 {
		c.ReadPct = 0.5
	}
	if c.SingleWriterKeys > c.Keys {
		c.SingleWriterKeys = c.Keys
	}
}

// PlannedOp is one scripted operation.
type PlannedOp struct {
	Read  bool
	Key   string
	Value string // writes only; globally unique
}

// Key names key i; single-writer keys sort first.
func (c Config) keyName(i int) string {
	if i < c.SingleWriterKeys {
		return fmt.Sprintf("sw%d", i)
	}
	return fmt.Sprintf("k%d", i)
}

// Plan deterministically expands the config into one op script per client:
// the same seed always yields the same scripts. Written values are unique
// across the whole plan (client c's i-th write is "c<c>-<i>"), which the
// checkers rely on to map observations back to writes.
func Plan(cfg Config) [][]PlannedOp {
	cfg.withDefaults()
	plans := make([][]PlannedOp, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(c)))
		script := make([]PlannedOp, 0, cfg.Ops)
		for i := 0; i < cfg.Ops; i++ {
			ki := rng.Intn(cfg.Keys)
			if rng.Float64() < cfg.ReadPct {
				script = append(script, PlannedOp{Read: true, Key: cfg.keyName(ki)})
				continue
			}
			// Writes to a single-writer key must come from its owner
			// (the owner of key i is client i % Clients).
			if ki < cfg.SingleWriterKeys && ki%cfg.Clients != c {
				if cfg.Keys > cfg.SingleWriterKeys {
					ki = cfg.SingleWriterKeys + rng.Intn(cfg.Keys-cfg.SingleWriterKeys)
				} else if c < cfg.Keys {
					ki = c // client's own single-writer key
				} else {
					// Client owns no key at all: read instead.
					script = append(script, PlannedOp{Read: true, Key: cfg.keyName(ki)})
					continue
				}
			}
			script = append(script, PlannedOp{
				Key:   cfg.keyName(ki),
				Value: fmt.Sprintf("c%d-%d", c, i),
			})
		}
		plans[c] = script
	}
	return plans
}

// Client is the system adapter one concurrent worker drives. Read returns
// the observed versions (empty + found=false when absent); Write returns
// how the write concluded. Implementations classify their own errors:
// OutcomeFailed only when the write provably left no trace.
type Client interface {
	Read(key string) (obs []consistency.Observed, found bool, outcome consistency.Outcome)
	Write(op *consistency.PendingOp, key, value string) consistency.Outcome
}

// Run executes the planned scripts concurrently, one goroutine per client,
// recording every operation into rec. newClient builds the per-worker
// adapter (a socket client, a routed store handle, ...).
func Run(rec *consistency.Recorder, cfg Config, newClient func(i int) Client) {
	cfg.withDefaults()
	plans := Plan(cfg)
	var wg sync.WaitGroup
	for c := range plans {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := newClient(c)
			for _, op := range plans[c] {
				if op.Read {
					p := rec.Invoke(c, consistency.KindRead, op.Key, "")
					obs, found, outcome := cl.Read(op.Key)
					p.Return(outcome, found, obs...)
				} else {
					p := rec.Invoke(c, consistency.KindWrite, op.Key, op.Value)
					outcome := cl.Write(p, op.Key, op.Value)
					p.Return(outcome, true)
				}
			}
		}(c)
	}
	wg.Wait()
}

// Payloads deterministically generates n unique payload strings for the
// log-shaped harnesses (kafka, databus): seed-stable content with enough
// entropy to catch reordering and truncation.
func Payloads(seed int64, prefix string, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d-%08x", prefix, i, rng.Uint32())
	}
	return out
}
