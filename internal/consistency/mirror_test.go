package consistency

import (
	"errors"
	"testing"
)

// mirroredFixture is a clean two-origin mirrored history: east's partition 0
// acked three messages, west's two, the destination holds all of them with a
// redelivered (duplicated) suffix from a mirror restart on the east stream.
func mirroredFixture() MirroredPartition {
	return MirroredPartition{
		Topic:     "events",
		Partition: 0,
		Acked: map[string][]ProducedMsg{
			"east": {
				{Offset: 0, Payload: "e0"},
				{Offset: 30, Payload: "e1"},
				{Offset: 60, Payload: "e2"},
			},
			"west": {
				{Offset: 0, Payload: "w0"},
				{Offset: 30, Payload: "w1"},
			},
		},
		Mirrored: []MirroredMsg{
			{Origin: "east", Partition: 0, Seq: 0, Payload: "e0"},
			{Origin: "west", Partition: 0, Seq: 0, Payload: "w0"},
			{Origin: "east", Partition: 0, Seq: 30, Payload: "e1"},
			// mirror restart: the east batch at offset 30 is redelivered.
			{Origin: "east", Partition: 0, Seq: 30, Payload: "e1"},
			{Origin: "east", Partition: 0, Seq: 60, Payload: "e2"},
			{Origin: "west", Partition: 0, Seq: 30, Payload: "w1"},
		},
	}
}

func TestCheckKafkaMirroredAcceptsCleanHistory(t *testing.T) {
	if err := CheckKafkaMirrored(mirroredFixture()); err != nil {
		t.Fatalf("clean mirrored history rejected: %v", err)
	}
}

func TestCheckKafkaMirroredAcceptsUnackedExtras(t *testing.T) {
	// A producer retry across a source failover lands twice in the source
	// log; only one append is acked, but both get mirrored. The unacked one
	// occupies a source position the checker was never told about — legal.
	p := mirroredFixture()
	p.Mirrored = append(p.Mirrored,
		MirroredMsg{Origin: "east", Partition: 0, Seq: 90, Payload: "e1-retry"})
	if err := CheckKafkaMirrored(p); err != nil {
		t.Fatalf("unacked extra rejected: %v", err)
	}
}

func TestCheckKafkaMirroredRejectsLoss(t *testing.T) {
	p := mirroredFixture()
	// Drop the only copy of west offset 30.
	p.Mirrored = p.Mirrored[:len(p.Mirrored)-1]
	err := CheckKafkaMirrored(p)
	if !errors.Is(err, ErrLogViolation) {
		t.Fatalf("lost acked message accepted: %v", err)
	}
	t.Log(err)
}

func TestCheckKafkaMirroredRejectsCorruptedPayload(t *testing.T) {
	p := mirroredFixture()
	p.Mirrored[2].Payload = "tampered"
	err := CheckKafkaMirrored(p)
	if !errors.Is(err, ErrLogViolation) {
		t.Fatalf("corrupted payload accepted: %v", err)
	}
}

func TestCheckKafkaMirroredRejectsMutatedDuplicate(t *testing.T) {
	p := mirroredFixture()
	// The redelivered copy of east offset 30 differs from the first copy.
	p.Mirrored[3].Payload = "e1-mutated"
	// Keep the acked payload matching the *first* copy so only the
	// duplicate-identity rule can catch this... but the mutated duplicate
	// also violates the ack equality, either way it must be rejected.
	err := CheckKafkaMirrored(p)
	if !errors.Is(err, ErrLogViolation) {
		t.Fatalf("mutated duplicate accepted: %v", err)
	}
}

func TestCheckKafkaMirroredRejectsCausalOrderViolation(t *testing.T) {
	p := mirroredFixture()
	// east offset 60 arrives before the first copy of east offset 30: a
	// deduping consumer would see e2 before e1 — the source order (and with
	// it any per-key order on that partition) is broken.
	p.Mirrored = []MirroredMsg{
		{Origin: "east", Partition: 0, Seq: 0, Payload: "e0"},
		{Origin: "east", Partition: 0, Seq: 60, Payload: "e2"},
		{Origin: "east", Partition: 0, Seq: 30, Payload: "e1"},
		{Origin: "west", Partition: 0, Seq: 0, Payload: "w0"},
		{Origin: "west", Partition: 0, Seq: 30, Payload: "w1"},
	}
	err := CheckKafkaMirrored(p)
	if !errors.Is(err, ErrLogViolation) {
		t.Fatalf("causal order violation accepted: %v", err)
	}
	t.Log(err)
}

func TestCheckKafkaMirroredAcceptsInterleavedOrigins(t *testing.T) {
	// Cross-origin interleaving at the destination is unconstrained; only
	// per-origin order matters.
	p := mirroredFixture()
	p.Mirrored = []MirroredMsg{
		{Origin: "west", Partition: 0, Seq: 0, Payload: "w0"},
		{Origin: "west", Partition: 0, Seq: 30, Payload: "w1"},
		{Origin: "east", Partition: 0, Seq: 0, Payload: "e0"},
		{Origin: "east", Partition: 0, Seq: 30, Payload: "e1"},
		{Origin: "east", Partition: 0, Seq: 60, Payload: "e2"},
	}
	if err := CheckKafkaMirrored(p); err != nil {
		t.Fatalf("interleaved origins rejected: %v", err)
	}
}

func TestCheckKafkaMirroredRejectsUnknownOrigin(t *testing.T) {
	p := mirroredFixture()
	p.Mirrored[0].Origin = "mars"
	err := CheckKafkaMirrored(p)
	if !errors.Is(err, ErrLogViolation) {
		t.Fatalf("unknown origin accepted: %v", err)
	}
}

func TestCheckKafkaMirroredRejectsPartitionMixup(t *testing.T) {
	p := mirroredFixture()
	p.Mirrored[1].Partition = 3
	err := CheckKafkaMirrored(p)
	if !errors.Is(err, ErrLogViolation) {
		t.Fatalf("partition mixup accepted: %v", err)
	}
}

func TestCheckKafkaMirroredCompressedWrapperSubOrder(t *testing.T) {
	// Three inner messages of one compressed wrapper share Seq and are told
	// apart by Sub; their order is part of the causal order.
	p := MirroredPartition{
		Topic: "events", Partition: 0,
		Acked: map[string][]ProducedMsg{"east": nil},
		Mirrored: []MirroredMsg{
			{Origin: "east", Partition: 0, Seq: 0, Sub: 0, Payload: "a"},
			{Origin: "east", Partition: 0, Seq: 0, Sub: 1, Payload: "b"},
			{Origin: "east", Partition: 0, Seq: 0, Sub: 2, Payload: "c"},
			{Origin: "east", Partition: 0, Seq: 50, Sub: 0, Payload: "d"},
		},
	}
	if err := CheckKafkaMirrored(p); err != nil {
		t.Fatalf("clean wrapper history rejected: %v", err)
	}
	p.Mirrored[1], p.Mirrored[2] = p.Mirrored[2], p.Mirrored[1]
	if err := CheckKafkaMirrored(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("sub-order violation accepted: %v", err)
	}
}
