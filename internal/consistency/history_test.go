package consistency

import (
	"sync"
	"testing"
)

func TestRecorderTimestamps(t *testing.T) {
	rec := NewRecorder()
	p1 := rec.Invoke(0, KindWrite, "k", "a")
	p1.Return(OutcomeOK, true)
	p2 := rec.Invoke(1, KindRead, "k", "")
	p2.Return(OutcomeOK, true, Observed{Value: "a"})
	h := rec.History()
	if len(h) != 2 {
		t.Fatalf("recorded %d ops", len(h))
	}
	w, r := h[0], h[1]
	if w.Call >= w.Return {
		t.Fatalf("write call %d !< return %d", w.Call, w.Return)
	}
	if w.Return >= r.Call {
		t.Fatalf("sequential ops not ordered: write return %d, read call %d", w.Return, r.Call)
	}
	if r.Output[0].Value != "a" || !r.Found {
		t.Fatalf("read observation lost: %+v", r)
	}
}

func TestRecorderPendingOps(t *testing.T) {
	rec := NewRecorder()
	rec.Invoke(0, KindWrite, "k", "lost") // response never arrives
	h := rec.History()
	if h[0].Return != PendingReturn {
		t.Fatalf("pending op return = %d", h[0].Return)
	}
	if h[0].Outcome != OutcomeUnknown {
		t.Fatalf("pending op outcome = %v", h[0].Outcome)
	}
	// A pending write is an unknown write: it may surface.
	h = append(h, mkRead(1, "k", "lost", true, h[0].Call+1, h[0].Call+2))
	if err := CheckLinearizable(h); err != nil {
		t.Fatalf("pending write surfacing rejected: %v", err)
	}
}

func TestRecorderDoubleReturnPanics(t *testing.T) {
	rec := NewRecorder()
	p := rec.Invoke(0, KindWrite, "k", "a")
	p.Return(OutcomeOK, true)
	defer func() {
		if recover() == nil {
			t.Fatal("second Return did not panic")
		}
	}()
	p.Return(OutcomeOK, true)
}

func TestRecorderConcurrentUse(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := rec.Invoke(c, KindWrite, "k", "v")
				p.Return(OutcomeOK, true)
			}
		}(c)
	}
	wg.Wait()
	h := rec.History()
	if len(h) != 8*200 {
		t.Fatalf("lost ops: %d", len(h))
	}
	seen := map[int64]bool{}
	for _, op := range h {
		if seen[op.Call] || seen[op.Return] {
			t.Fatal("duplicate logical timestamp")
		}
		seen[op.Call], seen[op.Return] = true, true
		if op.Call >= op.Return {
			t.Fatalf("call %d !< return %d", op.Call, op.Return)
		}
	}
}

func TestHistoryPerKey(t *testing.T) {
	h := History{
		mkWrite(0, "a", "1", 1, 2, OutcomeOK),
		mkWrite(0, "b", "2", 3, 4, OutcomeOK),
		mkRead(0, "a", "1", true, 5, 6),
	}
	byKey := h.PerKey()
	if len(byKey) != 2 || len(byKey["a"]) != 2 || len(byKey["b"]) != 1 {
		t.Fatalf("PerKey split wrong: %v", byKey)
	}
	if got := len(h.Writes()); got != 2 {
		t.Fatalf("Writes() = %d", got)
	}
}
