package consistency

import (
	"errors"
	"fmt"
	"sort"
)

// Linearizability checking for read/write registers, in the style of Wing &
// Gong [WG93] with Lowe's linked-list + memoization refinements (the
// algorithm behind Knossos and Porcupine): search for a total order of the
// operations that (a) respects the real-time partial order — if op A
// returned before op B was invoked, A comes first — and (b) is legal for a
// sequential register — every read returns the most recently written value.
//
// Operations with OutcomeUnknown are kept: a write whose ack was lost may
// have taken effect at any later point (its response timestamp is treated as
// infinity), and "never took effect" is subsumed by linearizing it after
// every read. Operations with OutcomeFailed provably left no trace and are
// dropped before the search — which is precisely what makes a read observing
// such a value a checkable violation.

// ErrNotLinearizable is wrapped by every linearizability violation.
var ErrNotLinearizable = errors.New("consistency: history not linearizable")

// ErrSearchBudget means the checker gave up before deciding; histories this
// adversarial should be split or shrunk.
var ErrSearchBudget = errors.New("consistency: linearizability search budget exhausted")

// LinearConfig tunes the checker.
type LinearConfig struct {
	// MaxSteps bounds the backtracking search per key (default 5e6).
	MaxSteps int
}

// CheckLinearizable verifies that each key's sub-history is linearizable
// with respect to a read/write register. It returns nil when a legal
// linearization exists for every key.
func CheckLinearizable(h History) error {
	return CheckLinearizableCfg(h, LinearConfig{})
}

// CheckLinearizableCfg is CheckLinearizable with an explicit config.
func CheckLinearizableCfg(h History, cfg LinearConfig) error {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 5_000_000
	}
	for key, ops := range h.PerKey() {
		if err := checkRegister(key, ops, cfg.MaxSteps); err != nil {
			return err
		}
	}
	return nil
}

// regState is the sequential register: a value and whether any write has
// been applied yet (reads before the first write must report not-found).
type regState struct {
	value  string
	exists bool
}

// step applies op to the register; ok reports whether the op's recorded
// response is legal in this state.
func (s regState) step(op *Op) (regState, bool) {
	switch op.Kind {
	case KindWrite:
		return regState{value: op.Input, exists: true}, true
	default:
		if op.Found != s.exists {
			return s, false
		}
		if !op.Found {
			return s, true
		}
		return s, len(op.Output) == 1 && op.Output[0].Value == s.value
	}
}

// entry is one event (invocation or response) in the time-ordered,
// doubly-linked event list the search walks. A call entry points at its
// response via match; response entries carry match == nil.
type entry struct {
	op         *Op
	id         int
	match      *entry // response entry for calls, nil for responses
	prev, next *entry
}

// lift removes a call entry and its response from the list (the op has been
// provisionally linearized); unlift reinserts them on backtrack.
func (e *entry) lift() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.match.prev.next = e.match.next
	if e.match.next != nil {
		e.match.next.prev = e.match.prev
	}
}

func (e *entry) unlift() {
	e.match.prev.next = e.match
	if e.match.next != nil {
		e.match.next.prev = e.match
	}
	e.prev.next = e
	e.next.prev = e
}

// checkRegister runs the search for one key.
func checkRegister(key string, ops History, maxSteps int) error {
	// Keep only ops that could have left a trace or made an observation.
	var live History
	for _, op := range ops {
		if op.Outcome == OutcomeFailed {
			continue
		}
		if op.Kind == KindRead && op.Outcome != OutcomeOK {
			continue // a failed read observed nothing
		}
		if op.Kind == KindRead && len(op.Output) > 1 {
			return fmt.Errorf("%w: key %q: read returned %d concurrent versions; a register read is single-valued (%s)",
				ErrNotLinearizable, key, len(op.Output), op)
		}
		live = append(live, op)
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) > 4096 {
		return fmt.Errorf("%w: key %q: %d ops", ErrSearchBudget, key, len(live))
	}

	head := buildEntries(live)
	n := len(live)
	linearized := newBitset(n)
	cache := map[string]bool{}
	type frame struct {
		e     *entry
		state regState
	}
	var stack []frame
	var state regState
	steps := 0

	ent := head.next // first real entry
	for head.next != nil {
		steps++
		if steps > maxSteps {
			return fmt.Errorf("%w: key %q after %d steps", ErrSearchBudget, key, steps)
		}
		if ent.match != nil {
			// Call entry: try to linearize this op now.
			newState, ok := state.step(ent.op)
			cacheKey := ""
			if ok {
				linearized.set(ent.id)
				cacheKey = cacheKeyFor(linearized, newState)
				if cache[cacheKey] {
					ok = false
				}
				if !ok {
					linearized.clear(ent.id)
				}
			}
			if ok {
				cache[cacheKey] = true
				stack = append(stack, frame{e: ent, state: state})
				state = newState
				ent.lift()
				ent = head.next
			} else {
				ent = ent.next
			}
		} else {
			// Response entry: every linearization must place the matching op
			// before this point, so backtrack.
			if len(stack) == 0 {
				return explainRegister(key, live)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = f.state
			linearized.clear(f.e.id)
			f.e.unlift()
			ent = f.e.next
		}
	}
	return nil
}

// buildEntries lays out call/response events in timestamp order behind a
// sentinel head node.
func buildEntries(ops History) *entry {
	type event struct {
		t    int64
		call bool
		op   *Op
		id   int
	}
	events := make([]event, 0, 2*len(ops))
	for i, op := range ops {
		ret := op.Return
		if op.Kind == KindWrite && op.Outcome == OutcomeUnknown {
			// An unacknowledged write may take effect after its error came
			// back (hinted handoff, a straggling replica), so its response
			// is pushed past every completed operation.
			ret = PendingReturn
		}
		events = append(events, event{t: op.Call, call: true, op: op, id: i})
		events = append(events, event{t: ret, call: false, op: op, id: i})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		// Ties only occur among PendingReturn responses; order them after
		// calls and deterministically by id.
		if events[i].call != events[j].call {
			return events[i].call
		}
		return events[i].id < events[j].id
	})
	head := &entry{}
	calls := make(map[int]*entry, len(ops))
	cur := head
	for _, ev := range events {
		e := &entry{op: ev.op, id: ev.id, prev: cur}
		cur.next = e
		cur = e
		if ev.call {
			calls[ev.id] = e
		} else {
			calls[ev.id].match = e
		}
	}
	return head
}

// explainRegister builds the violation error with the smallest useful
// context: the reads whose values are impossible.
func explainRegister(key string, ops History) error {
	written := map[string]bool{}
	for _, op := range ops {
		if op.Kind == KindWrite {
			written[op.Input] = true
		}
	}
	for _, op := range ops {
		if op.Kind == KindRead && op.Found && len(op.Output) == 1 && !written[op.Output[0].Value] {
			return fmt.Errorf("%w: key %q: %s observed a value never written", ErrNotLinearizable, key, op)
		}
	}
	return fmt.Errorf("%w: key %q: no legal ordering of %d ops", ErrNotLinearizable, key, len(ops))
}

// bitset is a fixed-capacity bitmask over op ids.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// cacheKeyFor packs (linearized-set, state) into a map key.
func cacheKeyFor(b bitset, s regState) string {
	buf := make([]byte, 0, len(b)*8+len(s.value)+2)
	for _, w := range b {
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(w>>(8*k)))
		}
	}
	if s.exists {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, s.value...)
	return string(buf)
}
