package consistency

import (
	"errors"
	"testing"
)

// --- Espresso ---------------------------------------------------------------

func goodTimeline() Timeline {
	master := []TimelineEntry{
		{SCN: 1, Key: "a", Etag: "e1"},
		{SCN: 2, Key: "b", Etag: "e2"},
		{SCN: 2, Key: "a", Etag: "e3"}, // txn 2 touches two rows
		{SCN: 3, Key: "b", Etag: "e4"},
	}
	return Timeline{
		Partition: 0,
		Master:    master,
		Replica:   append([]TimelineEntry(nil), master...),
	}
}

func TestEspressoTimelineAccepts(t *testing.T) {
	if err := CheckEspressoTimeline(goodTimeline()); err != nil {
		t.Fatalf("clean timeline rejected: %v", err)
	}
	// Idempotent redelivery of the head transaction is legal.
	tl := goodTimeline()
	tl.Replica = append(tl.Replica[:3:3], tl.Replica[2], tl.Replica[3])
	if err := CheckEspressoTimeline(tl); err != nil {
		t.Fatalf("redelivered head rejected: %v", err)
	}
	// A replica mid-transaction (partial head) is legal.
	tl = goodTimeline()
	tl.Replica = tl.Replica[:2]
	if err := CheckEspressoTimeline(tl); err != nil {
		t.Fatalf("partial head rejected: %v", err)
	}
}

func TestEspressoTimelineRejectsRewind(t *testing.T) {
	tl := goodTimeline()
	// Key "a" applied at SCN 2 then rewound to SCN 1.
	tl.Replica = []TimelineEntry{
		{SCN: 2, Key: "a", Etag: "e3"},
		{SCN: 1, Key: "a", Etag: "e1"},
	}
	if err := CheckEspressoTimeline(tl); !errors.Is(err, ErrTimelineViolation) {
		t.Fatalf("key rewind accepted: err=%v", err)
	}
}

func TestEspressoTimelineRejectsInventedRow(t *testing.T) {
	tl := goodTimeline()
	tl.Replica = append(tl.Replica, TimelineEntry{SCN: 9, Key: "z", Etag: "zz"})
	if err := CheckEspressoTimeline(tl); !errors.Is(err, ErrTimelineViolation) {
		t.Fatalf("invented row accepted: err=%v", err)
	}
}

func TestEspressoTimelineRejectsSkippedCommit(t *testing.T) {
	tl := goodTimeline()
	// SCN 2's rows never applied though the replica reached SCN 3.
	tl.Replica = []TimelineEntry{
		{SCN: 1, Key: "a", Etag: "e1"},
		{SCN: 3, Key: "b", Etag: "e4"},
	}
	if err := CheckEspressoTimeline(tl); !errors.Is(err, ErrTimelineViolation) {
		t.Fatalf("skipped commit accepted: err=%v", err)
	}
}

func TestEspressoTimelineRejectsMasterRewind(t *testing.T) {
	tl := goodTimeline()
	tl.Master[3].SCN = 1
	if err := CheckEspressoTimeline(tl); !errors.Is(err, ErrTimelineViolation) {
		t.Fatalf("master SCN rewind accepted: err=%v", err)
	}
}

// --- Kafka ------------------------------------------------------------------

func goodKafka() KafkaPartition {
	return KafkaPartition{
		Topic: "t", Partition: 0,
		Earliest: 0, Latest: 30,
		Produced: []ProducedMsg{{Offset: 0, Payload: "m0"}, {Offset: 10, Payload: "m1"}, {Offset: 20, Payload: "m2"}},
		Consumed: []ConsumedMsg{{NextOffset: 10, Payload: "m0"}, {NextOffset: 20, Payload: "m1"}, {NextOffset: 30, Payload: "m2"}},
	}
}

func TestKafkaLogAccepts(t *testing.T) {
	if err := CheckKafkaLog(goodKafka()); err != nil {
		t.Fatalf("clean log rejected: %v", err)
	}
}

func TestKafkaLogRejectsDuplicateAck(t *testing.T) {
	p := goodKafka()
	p.Produced[1].Offset = 0 // two produces acked at the same position
	if err := CheckKafkaLog(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("duplicate ack accepted: err=%v", err)
	}
}

func TestKafkaLogRejectsReorder(t *testing.T) {
	p := goodKafka()
	p.Consumed[0].Payload, p.Consumed[1].Payload = p.Consumed[1].Payload, p.Consumed[0].Payload
	if err := CheckKafkaLog(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("reordered consumption accepted: err=%v", err)
	}
}

func TestKafkaLogRejectsLoss(t *testing.T) {
	p := goodKafka()
	p.Consumed = p.Consumed[:2] // m2 acked but never consumed
	if err := CheckKafkaLog(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("lost message accepted: err=%v", err)
	}
}

func TestKafkaLogRejectsOffsetRewind(t *testing.T) {
	p := goodKafka()
	p.Consumed[2].NextOffset = 15
	if err := CheckKafkaLog(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("offset rewind accepted: err=%v", err)
	}
}

func TestKafkaLogRejectsGapAtEnd(t *testing.T) {
	p := goodKafka()
	p.Latest = 40 // log end beyond the last consumed position
	if err := CheckKafkaLog(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("tail gap accepted: err=%v", err)
	}
}

// --- Databus ----------------------------------------------------------------

func goodStream() (map[int64]int, []int64, []StreamObs) {
	committed := map[int64]int{1: 2, 2: 1, 3: 2}
	order := []int64{1, 2, 3}
	stream := []StreamObs{
		{SCN: 1}, {SCN: 1, EndOfTxn: true}, {SCN: 1, Checkpoint: true},
		{SCN: 2, EndOfTxn: true}, {SCN: 2, Checkpoint: true},
		{SCN: 3}, {SCN: 3, EndOfTxn: true}, {SCN: 3, Checkpoint: true},
	}
	return committed, order, stream
}

func TestSCNStreamAccepts(t *testing.T) {
	committed, order, stream := goodStream()
	if err := CheckSCNStream(committed, order, stream); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}

func TestSCNStreamAcceptsWindowRedelivery(t *testing.T) {
	committed, order, _ := goodStream()
	// Txn 3's window is redelivered from its start after a consumer fault.
	stream := []StreamObs{
		{SCN: 1}, {SCN: 1, EndOfTxn: true}, {SCN: 1, Checkpoint: true},
		{SCN: 2, EndOfTxn: true}, {SCN: 2, Checkpoint: true},
		{SCN: 3}, {SCN: 3}, {SCN: 3, EndOfTxn: true}, {SCN: 3, Checkpoint: true},
	}
	if err := CheckSCNStream(committed, order, stream); err != nil {
		t.Fatalf("window redelivery rejected: %v", err)
	}
}

func TestSCNStreamRejectsRewind(t *testing.T) {
	committed, order, stream := goodStream()
	stream = append(stream, StreamObs{SCN: 1}) // delivery rewinds past checkpoint 3
	if err := CheckSCNStream(committed, order, stream); !errors.Is(err, ErrStreamViolation) {
		t.Fatalf("SCN rewind accepted: err=%v", err)
	}
}

func TestSCNStreamRejectsPhantomSCN(t *testing.T) {
	committed, order, stream := goodStream()
	stream = append(stream, StreamObs{SCN: 99})
	if err := CheckSCNStream(committed, order, stream); !errors.Is(err, ErrStreamViolation) {
		t.Fatalf("phantom SCN accepted: err=%v", err)
	}
}

func TestSCNStreamRejectsSkippedTxn(t *testing.T) {
	committed, order, _ := goodStream()
	stream := []StreamObs{
		{SCN: 1}, {SCN: 1, EndOfTxn: true}, {SCN: 1, Checkpoint: true},
		// txn 2 skipped entirely
		{SCN: 3}, {SCN: 3, EndOfTxn: true}, {SCN: 3, Checkpoint: true},
	}
	if err := CheckSCNStream(committed, order, stream); !errors.Is(err, ErrStreamViolation) {
		t.Fatalf("skipped txn accepted: err=%v", err)
	}
}

func TestSCNStreamRejectsMidWindowCheckpoint(t *testing.T) {
	committed, order, _ := goodStream()
	stream := []StreamObs{
		{SCN: 1}, {SCN: 1, Checkpoint: true}, // checkpoint before EndOfTxn
	}
	if err := CheckSCNStream(committed, order, stream); !errors.Is(err, ErrStreamViolation) {
		t.Fatalf("mid-window checkpoint accepted: err=%v", err)
	}
}

func TestSCNStreamRejectsPartialWindowBelowCheckpoint(t *testing.T) {
	committed, order, _ := goodStream()
	stream := []StreamObs{
		{SCN: 1, EndOfTxn: true}, {SCN: 1, Checkpoint: true}, // txn 1 has 2 events; only 1 delivered
	}
	if err := CheckSCNStream(committed, order, stream); !errors.Is(err, ErrStreamViolation) {
		t.Fatalf("partial window below checkpoint accepted: err=%v", err)
	}
}

func goodReplicated() ReplicatedPartition {
	return ReplicatedPartition{
		Topic: "events", Partition: 0, Start: 0, End: 30,
		Acked: []ProducedMsg{
			{Offset: 0, Payload: "a"}, {Offset: 10, Payload: "b"}, {Offset: 20, Payload: "c"},
		},
		Consumed: []ConsumedMsg{
			{NextOffset: 10, Payload: "a"}, {NextOffset: 20, Payload: "b"}, {NextOffset: 30, Payload: "c"},
		},
	}
}

func TestKafkaReplicatedAccepts(t *testing.T) {
	if err := CheckKafkaReplicated(goodReplicated()); err != nil {
		t.Fatal(err)
	}
}

func TestKafkaReplicatedAcceptsUnackedExtras(t *testing.T) {
	// A produce retried across a failover lands twice: the duplicate at
	// offset 30 was never acked, which is legal at-least-once behaviour.
	p := goodReplicated()
	p.End = 40
	p.Consumed = append(p.Consumed, ConsumedMsg{NextOffset: 40, Payload: "c"})
	if err := CheckKafkaReplicated(p); err != nil {
		t.Fatal(err)
	}
}

func TestKafkaReplicatedAcceptsPartialConsumption(t *testing.T) {
	// Consumption resumed at a saved mid-log offset: acks below Start are
	// out of scope.
	p := goodReplicated()
	p.Start = 10
	p.Consumed = p.Consumed[1:]
	if err := CheckKafkaReplicated(p); err != nil {
		t.Fatal(err)
	}
}

func TestKafkaReplicatedRejectsLostAck(t *testing.T) {
	p := goodReplicated()
	p.End = 20
	p.Consumed = p.Consumed[:2] // acked "c" at offset 20 vanished
	if err := CheckKafkaReplicated(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("lost acked message accepted: err=%v", err)
	}
}

func TestKafkaReplicatedRejectsRelocatedAck(t *testing.T) {
	// The messages all survive, but "b" moved: the offset its ack named now
	// serves different bytes.
	p := goodReplicated()
	p.Consumed = []ConsumedMsg{
		{NextOffset: 10, Payload: "a"}, {NextOffset: 20, Payload: "x"}, {NextOffset: 30, Payload: "b"},
	}
	if err := CheckKafkaReplicated(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("relocated acked message accepted: err=%v", err)
	}
}

func TestKafkaReplicatedRejectsDuplicateAck(t *testing.T) {
	p := goodReplicated()
	p.Acked = append(p.Acked, ProducedMsg{Offset: 10, Payload: "b2"})
	if err := CheckKafkaReplicated(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("duplicate ack accepted: err=%v", err)
	}
}

func TestKafkaReplicatedRejectsOffsetRewind(t *testing.T) {
	p := goodReplicated()
	p.Consumed[2].NextOffset = 15
	if err := CheckKafkaReplicated(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("offset rewind accepted: err=%v", err)
	}
}

func TestKafkaReplicatedRejectsGapAtEnd(t *testing.T) {
	p := goodReplicated()
	p.End = 45 // log end says more data exists than consumption reached
	if err := CheckKafkaReplicated(p); !errors.Is(err, ErrLogViolation) {
		t.Fatalf("gap at end accepted: err=%v", err)
	}
}
