package consistency

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// mkOp builds a completed op with explicit timestamps.
func mkWrite(client int, key, val string, call, ret int64, out Outcome) *Op {
	return &Op{Client: client, Kind: KindWrite, Key: key, Input: val, Call: call, Return: ret, Outcome: out}
}

func mkRead(client int, key, val string, found bool, call, ret int64) *Op {
	op := &Op{Client: client, Kind: KindRead, Key: key, Found: found, Call: call, Return: ret, Outcome: OutcomeOK}
	if found {
		op.Output = []Observed{{Value: val}}
	}
	return op
}

func TestLinearizableSequentialHistory(t *testing.T) {
	h := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		mkRead(0, "k", "a", true, 3, 4),
		mkWrite(0, "k", "b", 5, 6, OutcomeOK),
		mkRead(0, "k", "b", true, 7, 8),
	}
	if err := CheckLinearizable(h); err != nil {
		t.Fatalf("sequential history rejected: %v", err)
	}
}

func TestLinearizableReadBeforeAnyWrite(t *testing.T) {
	h := History{
		mkRead(0, "k", "", false, 1, 2),
		mkWrite(0, "k", "a", 3, 4, OutcomeOK),
	}
	if err := CheckLinearizable(h); err != nil {
		t.Fatalf("not-found read before first write rejected: %v", err)
	}
	// Corrupted: the read claims the key exists before any write.
	bad := History{
		mkRead(0, "k", "a", true, 1, 2),
		mkWrite(0, "k", "a", 3, 4, OutcomeOK),
	}
	if err := CheckLinearizable(bad); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("phantom early read accepted: %v", err)
	}
}

// The classic concurrency case: a read overlapping a write may return either
// the old or the new value.
func TestLinearizableOverlappingWriteRead(t *testing.T) {
	for _, val := range []string{"a", "b"} {
		h := History{
			mkWrite(0, "k", "a", 1, 2, OutcomeOK),
			mkWrite(1, "k", "b", 3, 7, OutcomeOK), // overlaps the read
			mkRead(2, "k", val, true, 4, 6),
		}
		if err := CheckLinearizable(h); err != nil {
			t.Fatalf("read of %q during overlapping write rejected: %v", val, err)
		}
	}
}

// A stale read after a write completed is the canonical violation.
func TestLinearizableRejectsStaleRead(t *testing.T) {
	h := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		mkWrite(0, "k", "b", 3, 4, OutcomeOK),
		mkRead(1, "k", "a", true, 5, 6), // b's write returned before this read began
	}
	if err := CheckLinearizable(h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("stale read accepted: err=%v", err)
	}
}

// Values never written must be rejected.
func TestLinearizableRejectsPhantomValue(t *testing.T) {
	h := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		mkRead(1, "k", "zzz", true, 3, 4),
	}
	if err := CheckLinearizable(h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("phantom value accepted: err=%v", err)
	}
}

// An unacknowledged write may surface later (took effect) or never — both
// must be accepted; but the system may not resurrect the old value after the
// unknown write's value has been observed.
func TestLinearizableUnknownWriteMayTakeEffect(t *testing.T) {
	base := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		mkWrite(1, "k", "b", 3, 4, OutcomeUnknown), // ack lost
	}
	surfaced := append(append(History{}, base...), mkRead(2, "k", "b", true, 5, 6))
	if err := CheckLinearizable(surfaced); err != nil {
		t.Fatalf("unknown write surfacing rejected: %v", err)
	}
	never := append(append(History{}, base...), mkRead(2, "k", "a", true, 5, 6))
	if err := CheckLinearizable(never); err != nil {
		t.Fatalf("unknown write never surfacing rejected: %v", err)
	}
	// Corrupted: b observed, then the register rewinds to a, then b again —
	// no register order explains a flip-flop around a completed observation.
	flip := append(append(History{}, base...),
		mkRead(2, "k", "b", true, 5, 6),
		mkRead(2, "k", "a", true, 7, 8),
	)
	if err := CheckLinearizable(flip); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("value flip-flop accepted: err=%v", err)
	}
}

// A definitely-failed write must never be observed.
func TestLinearizableRejectsObservedFailedWrite(t *testing.T) {
	h := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		mkWrite(1, "k", "b", 3, 4, OutcomeFailed),
		mkRead(2, "k", "b", true, 5, 6),
	}
	if err := CheckLinearizable(h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("observed rejected write accepted: err=%v", err)
	}
}

// A pending write (no response ever recorded) behaves like an unknown write.
func TestLinearizablePendingWrite(t *testing.T) {
	h := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		mkWrite(1, "k", "b", 3, PendingReturn, OutcomeUnknown),
		mkRead(2, "k", "b", true, 5, 6),
		mkRead(2, "k", "b", true, 7, 8),
	}
	if err := CheckLinearizable(h); err != nil {
		t.Fatalf("pending write surfacing rejected: %v", err)
	}
}

// Keys are independent registers: a violation on one key is pinpointed even
// in a big multi-key history.
func TestLinearizablePerKeyIsolation(t *testing.T) {
	h := History{
		mkWrite(0, "good", "x", 1, 2, OutcomeOK),
		mkRead(1, "good", "x", true, 3, 4),
		mkWrite(0, "bad", "x", 5, 6, OutcomeOK),
		mkWrite(0, "bad", "y", 7, 8, OutcomeOK),
		mkRead(1, "bad", "x", true, 9, 10),
	}
	err := CheckLinearizable(h)
	if !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("want violation, got %v", err)
	}
	if got := err.Error(); !contains(got, `"bad"`) {
		t.Fatalf("violation does not name the bad key: %v", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Reads returning sibling versions are not register reads.
func TestLinearizableRejectsMultiVersionRead(t *testing.T) {
	h := History{
		mkWrite(0, "k", "a", 1, 2, OutcomeOK),
		{Client: 1, Kind: KindRead, Key: "k", Found: true, Call: 3, Return: 4, Outcome: OutcomeOK,
			Output: []Observed{{Value: "a"}, {Value: "b"}}},
	}
	if err := CheckLinearizable(h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("multi-version read accepted: err=%v", err)
	}
}

// A randomized smoke: histories generated by actually running a mutex-guarded
// register must always check out, at any interleaving.
func TestLinearizableAcceptsRealConcurrentRegister(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rec := NewRecorder()
		var mu sync.Mutex
		state := map[string]string{}
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*31 + int64(c)))
				for i := 0; i < 50; i++ {
					key := fmt.Sprintf("k%d", rng.Intn(3))
					if rng.Intn(2) == 0 {
						val := fmt.Sprintf("c%d-%d", c, i)
						p := rec.Invoke(c, KindWrite, key, val)
						mu.Lock()
						state[key] = val
						mu.Unlock()
						p.Return(OutcomeOK, true)
					} else {
						p := rec.Invoke(c, KindRead, key, "")
						mu.Lock()
						v, ok := state[key]
						mu.Unlock()
						if ok {
							p.Return(OutcomeOK, true, Observed{Value: v})
						} else {
							p.Return(OutcomeOK, false)
						}
					}
				}
			}(c)
		}
		wg.Wait()
		if err := CheckLinearizable(rec.History()); err != nil {
			t.Fatalf("seed %d: real register history rejected: %v", seed, err)
		}
	}
}
