package bootstrap

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/databus"
)

func feed(t testing.TB, s *Server, scn int64, key, payload string, op databus.Op) {
	t.Helper()
	err := s.OnEvent(databus.Event{
		SCN: scn, TxnID: scn, EndOfTxn: true, Source: "s",
		Op: op, Key: []byte(key), Payload: []byte(payload),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsolidatedDeltaCollapsesUpdates(t *testing.T) {
	s := New()
	// 9 updates to key "hot", 1 to key "cold"
	for i := 1; i <= 9; i++ {
		feed(t, s, int64(i), "hot", fmt.Sprintf("v%d", i), databus.OpUpsert)
	}
	feed(t, s, 10, "cold", "c1", databus.OpUpsert)

	events, resume, err := s.ConsolidatedDelta(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("delta has %d events, want 2 (collapsed)", len(events))
	}
	if resume != 10 {
		t.Fatalf("resume = %d", resume)
	}
	byKey := map[string]string{}
	for _, e := range events {
		byKey[string(e.Key)] = string(e.Payload)
	}
	if byKey["hot"] != "v9" || byKey["cold"] != "c1" {
		t.Fatalf("delta = %v", byKey)
	}
}

func TestConsolidatedDeltaSinceMidStream(t *testing.T) {
	s := New()
	for i := 1; i <= 10; i++ {
		feed(t, s, int64(i), fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i), databus.OpUpsert)
	}
	events, _, err := s.ConsolidatedDelta(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// SCNs 8,9,10 touch k2,k0,k1 — three distinct keys
	if len(events) != 3 {
		t.Fatalf("delta since 7 = %d events", len(events))
	}
	for _, e := range events {
		if e.SCN <= 7 {
			t.Fatalf("delta leaked SCN %d", e.SCN)
		}
		if !e.EndOfTxn {
			t.Fatal("consolidated event not marked as its own txn")
		}
	}
}

func TestConsolidatedDeltaEquivalentToFold(t *testing.T) {
	// Property-style check: consolidated delta == last-writer fold of the log.
	s := New()
	state := map[string]string{}
	for i := 1; i <= 200; i++ {
		k := fmt.Sprintf("k%d", i%17)
		v := fmt.Sprintf("v%d", i)
		feed(t, s, int64(i), k, v, databus.OpUpsert)
		state[k] = v
	}
	events, _, err := s.ConsolidatedDelta(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(state) {
		t.Fatalf("delta %d rows, fold %d", len(events), len(state))
	}
	for _, e := range events {
		if state[string(e.Key)] != string(e.Payload) {
			t.Fatalf("row %s: delta %q, fold %q", e.Key, e.Payload, state[string(e.Key)])
		}
	}
}

func TestDeltaFailsBeyondLog(t *testing.T) {
	s := New()
	for i := 5; i <= 10; i++ {
		feed(t, s, int64(i), "k", "v", databus.OpUpsert)
	}
	s.ApplyOnce()
	s.TrimLog(8)
	if _, _, err := s.ConsolidatedDelta(5, nil); err == nil {
		t.Fatal("delta served beyond trimmed log")
	}
	// but a recent delta still works
	if _, _, err := s.ConsolidatedDelta(8, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotServesAppliedState(t *testing.T) {
	s := New()
	for i := 1; i <= 10; i++ {
		feed(t, s, int64(i), fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i), databus.OpUpsert)
	}
	s.ApplyOnce()
	if s.SnapshotLen() != 4 {
		t.Fatalf("snapshot rows = %d", s.SnapshotLen())
	}
	state := map[string]string{}
	u, err := s.Snapshot(nil, func(e databus.Event) error {
		state[string(e.Key)] = string(e.Payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if u != 10 {
		t.Fatalf("U = %d", u)
	}
	if len(state) != 4 || state["k2"] != "v10" {
		t.Fatalf("state = %v", state)
	}
}

func TestDeleteRemovesFromSnapshot(t *testing.T) {
	s := New()
	feed(t, s, 1, "gone", "v", databus.OpUpsert)
	feed(t, s, 2, "stays", "v", databus.OpUpsert)
	feed(t, s, 3, "gone", "", databus.OpDelete)
	s.ApplyOnce()
	if s.SnapshotLen() != 1 {
		t.Fatalf("snapshot rows = %d", s.SnapshotLen())
	}
}

// TestE7SnapshotConsistency reproduces §III.C's serving algorithm guarantee:
// a snapshot scanned while writes keep arriving is made consistent at U by
// replaying everything since the scan started.
func TestE7SnapshotConsistency(t *testing.T) {
	s := New()
	const keys = 50
	var scn int64
	commit := func(k, v string) {
		scn++
		feed(t, s, scn, k, v, databus.OpUpsert)
	}
	for i := 0; i < keys; i++ {
		commit(fmt.Sprintf("k%d", i), fmt.Sprintf("v0-%d", i))
	}
	s.ApplyOnce()

	// Writer keeps updating rows while the snapshot is being served.
	var wg sync.WaitGroup
	stopWriter := make(chan struct{})
	var writerMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := 1
		for {
			select {
			case <-stopWriter:
				return
			default:
			}
			writerMu.Lock()
			for i := 0; i < keys; i += 7 {
				commit(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d-%d", gen, i))
			}
			writerMu.Unlock()
			gen++
			time.Sleep(time.Millisecond)
			s.ApplyOnce() // applier running concurrently too
		}
	}()

	// Client builds its state from the snapshot+replay.
	clientState := map[string]string{}
	u, err := s.Snapshot(nil, func(e databus.Event) error {
		if e.Op == databus.OpDelete {
			delete(clientState, string(e.Key))
		} else {
			clientState[string(e.Key)] = string(e.Payload)
		}
		time.Sleep(100 * time.Microsecond) // a deliberately slow scan
		return nil
	})
	close(stopWriter)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: fold the full log up to U.
	ref := map[string]string{}
	events, _, err := s.ConsolidatedDelta(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.SCN <= u {
			ref[string(e.Key)] = string(e.Payload)
		}
	}
	for k, v := range ref {
		if clientState[k] != v {
			t.Fatalf("key %s: client %q, source-at-U %q (U=%d)", k, clientState[k], v, u)
		}
	}
	if len(clientState) != len(ref) {
		t.Fatalf("client has %d rows, source-at-U %d", len(clientState), len(ref))
	}
}

func TestCatchupPrefersDeltaThenSnapshot(t *testing.T) {
	s := New()
	for i := 1; i <= 20; i++ {
		feed(t, s, int64(i), fmt.Sprintf("k%d", i%5), "v", databus.OpUpsert)
	}
	s.ApplyOnce()

	// Recent client: delta path (few events, collapsed).
	n := 0
	resume, err := s.Catchup(15, nil, func(databus.Event) error { n++; return nil })
	if err != nil || resume != 20 {
		t.Fatalf("Catchup(15) = (%d, %v)", resume, err)
	}
	if n == 0 || n > 5 {
		t.Fatalf("delta path delivered %d events", n)
	}

	// Ancient client after trim: snapshot path.
	s.TrimLog(18)
	n = 0
	resume, err = s.Catchup(2, nil, func(databus.Event) error { n++; return nil })
	if err != nil || resume != 20 {
		t.Fatalf("Catchup(2) = (%d, %v)", resume, err)
	}
	if n < 5 {
		t.Fatalf("snapshot path delivered %d events", n)
	}
}

func TestFilterPushdown(t *testing.T) {
	s := New()
	for i := 1; i <= 20; i++ {
		e := databus.Event{SCN: int64(i), TxnID: int64(i), EndOfTxn: true,
			Source: "s", Key: []byte(fmt.Sprintf("k%d", i)), Payload: []byte("v")}
		e.ComputePartition(4)
		if err := s.OnEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	s.ApplyOnce()
	f := &databus.Filter{Partitions: []int{1}}
	events, _, err := s.ConsolidatedDelta(0, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Partition != 1 {
			t.Fatalf("filter leaked partition %d", e.Partition)
		}
	}
	var snapCount int
	if _, err := s.Snapshot(f, func(e databus.Event) error {
		if e.Partition != 1 {
			t.Fatalf("snapshot filter leaked partition %d", e.Partition)
		}
		snapCount++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if snapCount != len(events) {
		t.Fatalf("snapshot filtered %d vs delta %d", snapCount, len(events))
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	s := New()
	feed(t, s, 5, "k", "v", databus.OpUpsert)
	err := s.OnEvent(databus.Event{SCN: 3, Source: "s", Key: []byte("k")})
	if err == nil {
		t.Fatal("out-of-order event accepted")
	}
}

func BenchmarkConsolidatedDelta(b *testing.B) {
	s := New()
	// 100k updates to 1k keys: delta returns 1k rows instead of 100k events.
	for i := 1; i <= 100000; i++ {
		s.OnEvent(databus.Event{
			SCN: int64(i), TxnID: int64(i), EndOfTxn: true, Source: "s",
			Key: []byte(fmt.Sprintf("k%d", i%1000)), Payload: []byte("payload-bytes"),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events, _, err := s.ConsolidatedDelta(0, nil)
		if err != nil || len(events) != 1000 {
			b.Fatalf("(%d, %v)", len(events), err)
		}
	}
}
