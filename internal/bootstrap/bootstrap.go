// Package bootstrap implements the Databus bootstrap server (§III.C, Figure
// III.3): it listens to the relay's event stream, keeps long-term storage in
// two forms — an append-only Log and a Snapshot holding only the last event
// per row — and serves the two long look-back query types:
//
//   - Consolidated delta since SCN T: only the last of multiple updates to
//     the same row is returned ("fast playback" of time);
//   - Consistent snapshot at SCN U: the snapshot is served (possibly
//     inconsistently, since rows change during the long scan) and then all
//     changes since the scan started are replayed, making the result
//     consistent at U.
//
// The bootstrap server isolates the source database from clients that need
// these queries (§III.B).
package bootstrap

import (
	"fmt"
	"sort"
	"sync"

	"datainfra/internal/databus"
)

// Server is the bootstrap store and query engine.
type Server struct {
	mu sync.RWMutex
	// log is the append-only event log (the Log storage).
	log []databus.Event
	// logStart is the SCN of the first retained log entry.
	logStart int64
	// snapshot holds the last event per (source,key) — the Snapshot storage.
	snapshot map[string]databus.Event
	// appliedSCN is the log position reflected in the snapshot.
	appliedSCN int64
	lastSCN    int64
}

// New returns an empty bootstrap server.
func New() *Server {
	return &Server{snapshot: make(map[string]databus.Event)}
}

func rowKey(e *databus.Event) string { return e.Source + "\x00" + string(e.Key) }

// OnEvent implements databus.Consumer: the Log writer path. Events must
// arrive in SCN order (the client library guarantees this).
func (s *Server) OnEvent(e databus.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.SCN < s.lastSCN {
		return fmt.Errorf("bootstrap: event SCN %d before %d", e.SCN, s.lastSCN)
	}
	if len(s.log) == 0 && s.appliedSCN == 0 {
		s.logStart = e.SCN
	}
	s.log = append(s.log, e.Clone())
	s.lastSCN = e.SCN
	return nil
}

// OnCheckpoint implements databus.Consumer (no-op: the log is the state).
func (s *Server) OnCheckpoint(int64) {}

// ApplyOnce runs the Log applier: snapshot absorbs all fully logged
// transactions. Returns how many events were applied.
func (s *Server) ApplyOnce() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.log {
		if e.SCN <= s.appliedSCN {
			continue
		}
		k := rowKey(&e)
		if e.Op == databus.OpDelete {
			delete(s.snapshot, k)
		} else {
			s.snapshot[k] = e
		}
		if e.SCN > s.appliedSCN {
			s.appliedSCN = e.SCN
		}
		n++
	}
	return n
}

// TrimLog drops applied log entries with SCN < keepSince, bounding the Log
// storage. Clients older than keepSince will be served from the snapshot.
func (s *Server) TrimLog(keepSince int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keepSince > s.appliedSCN {
		keepSince = s.appliedSCN // never trim unapplied events
	}
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].SCN >= keepSince })
	if i == 0 {
		return
	}
	s.log = append([]databus.Event(nil), s.log[i:]...)
	if len(s.log) > 0 {
		s.logStart = s.log[0].SCN
	} else {
		s.logStart = s.appliedSCN + 1
	}
}

// LastSCN returns the newest event SCN seen.
func (s *Server) LastSCN() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastSCN
}

// LogLen returns the retained log length (diagnostics).
func (s *Server) LogLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// SnapshotLen returns the number of live rows in the snapshot.
func (s *Server) SnapshotLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.snapshot)
}

// ConsolidatedDelta returns, for every row changed after sinceSCN, only its
// final event — collapsing multiple updates to the same row. The returned
// SCN is the point from which relay consumption may resume. Fails if the
// log no longer reaches back to sinceSCN.
func (s *Server) ConsolidatedDelta(sinceSCN int64, f *databus.Filter) ([]databus.Event, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sinceSCN < s.logStart-1 {
		return nil, 0, fmt.Errorf("bootstrap: log starts at %d, cannot serve delta since %d (use snapshot)", s.logStart, sinceSCN)
	}
	last := make(map[string]int) // row -> index of final event
	var order []string
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].SCN > sinceSCN })
	for ; i < len(s.log); i++ {
		e := &s.log[i]
		if !f.Match(e) {
			continue
		}
		k := rowKey(e)
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = i
	}
	// Emit in the SCN order of each row's final event so the client applies
	// a valid (prefix-consistent) history.
	idxs := make([]int, 0, len(last))
	for _, k := range order {
		idxs = append(idxs, last[k])
	}
	sort.Ints(idxs)
	out := make([]databus.Event, 0, len(idxs))
	for _, i := range idxs {
		e := f.Apply(&s.log[i])
		e.EndOfTxn = true // each consolidated row is its own apply unit
		out = append(out, e)
	}
	return out, s.lastSCN, nil
}

// Snapshot serves a consistent snapshot: the Snapshot storage is scanned
// (rows may be concurrently modified — that scan alone is NOT consistent),
// then every change since the scan began is replayed. fn receives first the
// scan and then the replay; the returned SCN U is the sequence number of the
// last transaction reflected, from which the client resumes on the relay.
func (s *Server) Snapshot(f *databus.Filter, fn func(databus.Event) error) (int64, error) {
	// Phase 1: capture the key list and the replay start point.
	s.mu.RLock()
	start := s.appliedSCN
	keys := make([]string, 0, len(s.snapshot))
	for k := range s.snapshot {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys) // deterministic scan order

	// Phase 2: long scan — values read row-at-a-time, possibly newer than
	// `start` (the documented inconsistency the replay below repairs).
	for _, k := range keys {
		s.mu.RLock()
		e, ok := s.snapshot[k]
		s.mu.RUnlock()
		if !ok || !f.Match(&e) {
			continue
		}
		out := f.Apply(&e)
		out.EndOfTxn = true
		if err := fn(out); err != nil {
			return 0, err
		}
	}

	// Phase 3: replay everything since the scan started.
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].SCN > start })
	for ; i < len(s.log); i++ {
		e := &s.log[i]
		if !f.Match(e) {
			continue
		}
		out := f.Apply(e)
		out.EndOfTxn = true
		if err := fn(out); err != nil {
			return 0, err
		}
	}
	return s.lastSCN, nil
}

// Catchup implements databus.BootstrapSource: consolidated delta when the
// log reaches back far enough, snapshot+replay otherwise.
func (s *Server) Catchup(sinceSCN int64, f *databus.Filter, fn func(databus.Event) error) (int64, error) {
	events, resume, err := s.ConsolidatedDelta(sinceSCN, f)
	if err == nil {
		for _, e := range events {
			if err := fn(e); err != nil {
				return 0, err
			}
		}
		return resume, nil
	}
	return s.Snapshot(f, fn)
}
