package helix

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/zk"
)

func TestLegalNextLeaderStandby(t *testing.T) {
	cases := []struct {
		from, to State
		next     State
		changed  bool
	}{
		{StateOffline, StateLeader, StateStandby, true},
		{StateOffline, StateStandby, StateStandby, true},
		{StateStandby, StateLeader, StateLeader, true},
		{StateStandby, StateOffline, StateOffline, true},
		{StateLeader, StateOffline, StateStandby, true},
		{StateLeader, StateStandby, StateStandby, true},
		{StateLeader, StateLeader, StateLeader, false},
		{StateOffline, StateOffline, StateOffline, false},
	}
	for _, c := range cases {
		next, changed := legalNextModel(ModelLeaderStandby, c.from, c.to)
		if next != c.next || changed != c.changed {
			t.Errorf("legalNextModel(LeaderStandby,%s,%s) = (%s,%v), want (%s,%v)",
				c.from, c.to, next, changed, c.next, c.changed)
		}
	}
}

func TestIdealStateLeaderStandby(t *testing.T) {
	r := &Resource{Name: "topic", NumPartitions: 4, Replicas: 2, StateModel: ModelLeaderStandby}
	ideal := IdealState(r, []string{"b0", "b1", "b2"})
	for p := 0; p < 4; p++ {
		leaders, standbys := 0, 0
		for _, st := range ideal[p] {
			switch st {
			case StateLeader:
				leaders++
			case StateStandby:
				standbys++
			default:
				t.Fatalf("partition %d: unexpected state %s", p, st)
			}
		}
		if leaders != 1 || standbys != 1 {
			t.Fatalf("partition %d: %d leaders, %d standbys", p, leaders, standbys)
		}
		if _, ok := ideal.MasterOf(p); !ok {
			t.Fatalf("MasterOf must recognise LEADER for partition %d", p)
		}
	}
}

func TestBestPossiblePreferenceFilter(t *testing.T) {
	r := &Resource{Name: "topic", NumPartitions: 1, Replicas: 3, StateModel: ModelLeaderStandby}
	all := []string{"b0", "b1", "b2"}
	ideal := IdealState(r, all)

	// Without a filter the ideal leader keeps the partition.
	best := BestPossibleWithPreference(r, ideal, all, nil)
	def, _ := best.MasterOf(0)

	// The filter forces a specific instance to the front (the ISR hook).
	want := "b2"
	if def == want {
		want = "b1"
	}
	best = BestPossibleWithPreference(r, ideal, all, func(p int, chosen []string) []string {
		out := []string{want}
		for _, inst := range chosen {
			if inst != want {
				out = append(out, inst)
			}
		}
		return out
	})
	if got, _ := best.MasterOf(0); got != want {
		t.Fatalf("preference filter ignored: leader = %s, want %s", got, want)
	}
}

func TestControllerConvergesLeaderStandby(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "ls1")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	parts := make([]*Participant, 3)
	for i := range parts {
		p, err := NewParticipant(srv, "ls1", fmt.Sprintf("node-%d", i), &tracker{})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	res := &Resource{Name: "topic", NumPartitions: 4, Replicas: 2, StateModel: ModelLeaderStandby}
	if err := ctrl.AddResource(res); err != nil {
		t.Fatal(err)
	}
	ctrl.Start()

	count := func(want State) int {
		n := 0
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, st := range p.States("topic") {
				if st == want {
					n++
				}
			}
		}
		return n
	}
	waitFor(t, "LeaderStandby convergence", 5*time.Second, func() bool {
		return count(StateLeader) == 4 && count(StateStandby) == 4
	})
	if n := count(StateMaster) + count(StateSlave); n != 0 {
		t.Fatalf("MasterSlave states leaked into a LeaderStandby resource: %d", n)
	}

	// Kill a node; the controller must re-elect so all partitions keep a leader.
	victim := parts[0]
	parts[0] = nil
	victim.Close()
	waitFor(t, "LeaderStandby failover", 5*time.Second, func() bool {
		return count(StateLeader) == 4
	})
	for _, p := range parts {
		if p != nil {
			p.Close()
		}
	}
}
