package helix

// Re-convergence coverage: the controller must restore full master coverage
// when a node dies in the middle of a transition (its ephemeral vanishes with
// a SLAVE->MASTER it never completed still in flight), and drive the cluster
// back to the sticky ideal when the same instance later rejoins.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/zk"
)

// crashingModel refuses every promotion and reports the first attempt, so a
// test can kill the node at exactly the moment a SLAVE->MASTER is in flight.
type crashingModel struct {
	once sync.Once
	hit  chan struct{}
}

func newCrashingModel() *crashingModel {
	return &crashingModel{hit: make(chan struct{})}
}

func (m *crashingModel) Apply(t Transition) error {
	if t.To == StateMaster {
		m.once.Do(func() { close(m.hit) })
		return errors.New("node crashed mid-transition")
	}
	return nil
}

func TestReconvergenceAfterDeathMidTransition(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "mid")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	crash := newCrashingModel()
	victim, err := NewParticipant(srv, "mid", "node-0", crash)
	if err != nil {
		t.Fatal(err)
	}
	survivors := make([]*Participant, 2)
	for i := range survivors {
		p, err := NewParticipant(srv, "mid", fmt.Sprintf("node-%d", i+1), &tracker{})
		if err != nil {
			t.Fatal(err)
		}
		survivors[i] = p
		defer p.Close()
	}
	res := &Resource{Name: "db", NumPartitions: 4, Replicas: 2}
	if err := ctrl.AddResource(res); err != nil {
		t.Fatal(err)
	}
	ctrl.Start()

	// Wait until the victim is mid-transition — a promotion reached it and
	// failed, so it sits at SLAVE with the master handoff incomplete.
	select {
	case <-crash.hit:
	case <-time.After(5 * time.Second):
		t.Fatal("no promotion ever reached the victim")
	}
	victim.Close()

	waitFor(t, "re-convergence on survivors", 5*time.Second, func() bool {
		masterOf := map[int]string{}
		for _, p := range survivors {
			for part, st := range p.States("db") {
				if st != StateMaster {
					continue
				}
				if _, dup := masterOf[part]; dup {
					return false
				}
				masterOf[part] = p.Instance()
			}
		}
		return len(masterOf) == res.NumPartitions
	})

	// The routable view must agree: every partition mastered by a survivor.
	spec := NewSpectator(srv, "mid")
	defer spec.Close()
	waitFor(t, "external view routes around the dead node", 5*time.Second, func() bool {
		for part := 0; part < res.NumPartitions; part++ {
			inst, err := spec.MasterOf("db", part)
			if err != nil || inst == "node-0" {
				return false
			}
		}
		return true
	})
}

func TestReconvergenceAfterRestart(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "restart")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	parts := make([]*Participant, 3)
	for i := range parts {
		p, err := NewParticipant(srv, "restart", fmt.Sprintf("node-%d", i), &tracker{})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	defer func() {
		for _, p := range parts {
			if p != nil {
				p.Close()
			}
		}
	}()
	res := &Resource{Name: "db", NumPartitions: 4, Replicas: 2}
	if err := ctrl.AddResource(res); err != nil {
		t.Fatal(err)
	}
	ctrl.Start()

	countMasters := func(ps []*Participant) int {
		n := 0
		for _, p := range ps {
			if p == nil {
				continue
			}
			for _, st := range p.States("db") {
				if st == StateMaster {
					n++
				}
			}
		}
		return n
	}
	waitFor(t, "initial convergence", 5*time.Second, func() bool {
		return countMasters(parts) == res.NumPartitions
	})

	// Kill node-0 while it holds masters, then wait for failover.
	victim := parts[0]
	parts[0] = nil
	victim.Close()
	waitFor(t, "failover to survivors", 5*time.Second, func() bool {
		return countMasters(parts) == res.NumPartitions
	})

	// Restart the same instance name on a fresh session. Its previous
	// incarnation's CURRENTSTATE claims must be wiped on startup, or the
	// controller would issue transitions from states the new (OFFLINE)
	// participant never held and the partition would stay masterless.
	reborn, err := NewParticipant(srv, "restart", "node-0", &tracker{})
	if err != nil {
		t.Fatal(err)
	}
	parts[0] = reborn

	// Sticky ideal: the controller drives the cluster back to the original
	// layout, so the reborn node reclaims its share of masters.
	waitFor(t, "re-convergence after rejoin", 5*time.Second, func() bool {
		masterOf := map[int]string{}
		for _, p := range parts {
			for part, st := range p.States("db") {
				if st != StateMaster {
					continue
				}
				if _, dup := masterOf[part]; dup {
					return false
				}
				masterOf[part] = p.Instance()
			}
		}
		if len(masterOf) != res.NumPartitions {
			return false
		}
		for _, inst := range masterOf {
			if inst == "node-0" {
				return true
			}
		}
		return false
	})
}
