package helix

import "sort"

// WeightedIdealState implements Helix's load-balancing feature (§IV.B:
// "smart allocation of resources to servers based on server capacity"):
// masters are assigned proportionally to instance capacity, with slaves
// round-robin over the remaining instances. An instance with capacity 2
// masters roughly twice the partitions of an instance with capacity 1.
func WeightedIdealState(r *Resource, capacity map[string]int) Assignment {
	type slot struct {
		name string
		cap  int
	}
	slots := make([]slot, 0, len(capacity))
	total := 0
	for name, c := range capacity {
		if c <= 0 {
			continue
		}
		slots = append(slots, slot{name: name, cap: c})
		total += c
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].name < slots[j].name })
	out := make(Assignment, r.NumPartitions)
	if total == 0 {
		return out
	}
	// Largest-remainder apportionment of masters by capacity.
	masters := make([]string, 0, r.NumPartitions)
	type share struct {
		idx       int
		base      int
		remainder float64
	}
	shares := make([]share, len(slots))
	assigned := 0
	for i, s := range slots {
		exact := float64(r.NumPartitions) * float64(s.cap) / float64(total)
		base := int(exact)
		shares[i] = share{idx: i, base: base, remainder: exact - float64(base)}
		assigned += base
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].remainder != shares[j].remainder {
			return shares[i].remainder > shares[j].remainder
		}
		return shares[i].idx < shares[j].idx
	})
	for i := 0; assigned < r.NumPartitions; i, assigned = (i+1)%len(shares), assigned+1 {
		shares[i].base++
	}
	for _, sh := range shares {
		for k := 0; k < sh.base; k++ {
			masters = append(masters, slots[sh.idx].name)
		}
	}
	// Interleave masters so consecutive partitions spread across instances.
	sort.Strings(masters)
	interleaved := make([]string, 0, len(masters))
	for stride := 0; stride < len(slots); stride++ {
		for i := stride; i < len(masters); i += len(slots) {
			interleaved = append(interleaved, masters[i])
		}
	}

	replicas := r.Replicas
	if replicas > len(slots) {
		replicas = len(slots)
	}
	names := make([]string, len(slots))
	for i, s := range slots {
		names[i] = s.name
	}
	for p := 0; p < r.NumPartitions; p++ {
		m := map[string]State{}
		master := interleaved[p%len(interleaved)]
		m[master] = StateMaster
		// slaves: next instances in name order, skipping the master
		start := sort.SearchStrings(names, master)
		for off, added := 1, 0; added < replicas-1 && off <= len(names); off++ {
			inst := names[(start+off)%len(names)]
			if inst == master {
				continue
			}
			if _, dup := m[inst]; dup {
				continue
			}
			m[inst] = StateSlave
			added++
		}
		out[p] = m
	}
	return out
}

// MasterCounts tallies masters per instance in an assignment (diagnostics,
// load-balance checks).
func MasterCounts(a Assignment) map[string]int {
	out := map[string]int{}
	for p := range a {
		if inst, ok := a.MasterOf(p); ok {
			out[inst]++
		}
	}
	return out
}
