package helix

import (
	"encoding/json"
	"fmt"
	"path"
	"sync"
	"time"

	"datainfra/internal/zk"
)

// zk layout (per managed cluster):
//
//	/helix/<cluster>/resources/<name>          Resource JSON
//	/helix/<cluster>/instances/<id>            ephemeral, created by participants
//	/helix/<cluster>/messages/<id>/msg-NNN     Transition JSON (sequential)
//	/helix/<cluster>/currentstate/<id>/<res>   Assignment JSON (per instance)
//	/helix/<cluster>/externalview/<res>        Assignment JSON (controller output)

func base(clusterName string) string { return "/helix/" + clusterName }

// Controller is the Helix brain: it observes live instances and their
// current states and drives the cluster toward BESTPOSSIBLESTATE by issuing
// transitions. One active controller per cluster.
type Controller struct {
	clusterName string
	sess        *zk.Session

	mu        sync.Mutex
	resources map[string]*Resource
	ideal     map[string]Assignment       // resource -> IDEALSTATE over registered instances
	pending   map[string]bool             // in-flight transition ids
	prefs     map[string]PreferenceFilter // resource -> election preference hook

	stop chan struct{}
	kick chan struct{}
	wg   sync.WaitGroup
}

// NewController builds (but does not start) a controller.
func NewController(srv *zk.Server, clusterName string) (*Controller, error) {
	sess := srv.NewSession()
	for _, p := range []string{"", "/resources", "/instances", "/messages", "/currentstate", "/externalview"} {
		if err := sess.CreateAll(base(clusterName)+p, nil); err != nil {
			return nil, err
		}
	}
	return &Controller{
		clusterName: clusterName,
		sess:        sess,
		resources:   map[string]*Resource{},
		ideal:       map[string]Assignment{},
		pending:     map[string]bool{},
		prefs:       map[string]PreferenceFilter{},
		stop:        make(chan struct{}),
		kick:        make(chan struct{}, 1),
	}, nil
}

// AddResource registers a resource and computes its IDEALSTATE over the
// instances known at the time of the call plus later arrivals (the ideal
// state is recomputed as instances register).
func (c *Controller) AddResource(r *Resource) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := c.sess.CreateAll(base(c.clusterName)+"/resources/"+r.Name, data); err != nil {
		return err
	}
	c.mu.Lock()
	c.resources[r.Name] = r
	c.mu.Unlock()
	c.Kick()
	return nil
}

// SetPreferenceFilter installs an election preference hook for a resource:
// before states are assigned, the live candidate list of each partition is
// passed through fn (see PreferenceFilter). Kafka uses this to promote only
// in-sync replicas on leader failover.
func (c *Controller) SetPreferenceFilter(resource string, fn PreferenceFilter) {
	c.mu.Lock()
	c.prefs[resource] = fn
	c.mu.Unlock()
	c.Kick()
}

// Kick requests a rebalance pass.
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Start launches the control loop.
func (c *Controller) Start() {
	c.wg.Add(1)
	go c.run()
}

func (c *Controller) run() {
	defer c.wg.Done()
	for {
		liveList, liveWatch, err := c.sess.WatchChildren(base(c.clusterName) + "/instances")
		if err != nil {
			return
		}
		c.rebalance(liveList)
		select {
		case <-c.stop:
			return
		case <-liveWatch:
		case <-c.kick:
		case <-time.After(50 * time.Millisecond):
			// Poll current states: participants update them out-of-band.
		}
	}
}

// liveInstances reads the ephemeral registrations.
func (c *Controller) liveInstances() []string {
	kids, err := c.sess.Children(base(c.clusterName) + "/instances")
	if err != nil {
		return nil
	}
	return kids
}

// currentState reads an instance's reported assignment for a resource.
func (c *Controller) currentState(instance, resource string) map[int]State {
	data, _, err := c.sess.Get(base(c.clusterName) + "/currentstate/" + instance + "/" + resource)
	if err != nil || len(data) == 0 {
		return map[int]State{}
	}
	var raw map[string]State
	if err := json.Unmarshal(data, &raw); err != nil {
		return map[int]State{}
	}
	out := make(map[int]State, len(raw))
	for k, st := range raw {
		var p int
		fmt.Sscanf(k, "%d", &p)
		out[p] = st
	}
	return out
}

// rebalance computes BESTPOSSIBLESTATE for every resource and issues the
// transitions that move the cluster toward it.
func (c *Controller) rebalance(live []string) {
	c.mu.Lock()
	resources := make([]*Resource, 0, len(c.resources))
	for _, r := range c.resources {
		resources = append(resources, r)
	}
	c.mu.Unlock()

	for _, r := range resources {
		// IDEALSTATE is sticky: computed over all instances ever seen live,
		// so it is stable across failures (the set only grows).
		c.mu.Lock()
		ideal, ok := c.ideal[r.Name]
		if !ok || c.idealMissingInstances(ideal, live) {
			known := c.knownInstances(ideal, live)
			ideal = IdealState(r, known)
			c.ideal[r.Name] = ideal
		}
		prefFn := c.prefs[r.Name]
		c.mu.Unlock()

		target := BestPossibleWithPreference(r, ideal, live, prefFn)

		// Assemble CURRENTSTATE from participant reports.
		current := Assignment{}
		for _, inst := range live {
			for p, st := range c.currentState(inst, r.Name) {
				if st == StateOffline {
					continue
				}
				if current[p] == nil {
					current[p] = map[string]State{}
				}
				current[p][inst] = st
			}
		}

		for _, t := range diffModel(r.Model(), r.Name, current, target) {
			c.issue(t)
		}
		c.publishExternalView(r.Name, current)
	}
}

func (c *Controller) knownInstances(ideal Assignment, live []string) []string {
	set := map[string]bool{}
	for _, m := range ideal {
		for inst := range m {
			set[inst] = true
		}
	}
	for _, inst := range live {
		set[inst] = true
	}
	out := make([]string, 0, len(set))
	for inst := range set {
		out = append(out, inst)
	}
	return out
}

func (c *Controller) idealMissingInstances(ideal Assignment, live []string) bool {
	if len(ideal) == 0 {
		return true
	}
	known := map[string]bool{}
	for _, m := range ideal {
		for inst := range m {
			known[inst] = true
		}
	}
	for _, inst := range live {
		if !known[inst] {
			return true
		}
	}
	return false
}

// issue sends a transition message unless an identical one is in flight.
func (c *Controller) issue(t Transition) {
	c.mu.Lock()
	if c.pending[t.ID] {
		c.mu.Unlock()
		return
	}
	c.pending[t.ID] = true
	c.mu.Unlock()

	data, err := json.Marshal(t)
	if err != nil {
		return
	}
	dir := base(c.clusterName) + "/messages/" + t.Instance
	if err := c.sess.CreateAll(dir, nil); err != nil {
		return
	}
	if _, err := c.sess.Create(dir+"/msg-", data, zk.FlagSequential); err != nil {
		return
	}
	// Clear the pending mark once the participant reports a state change;
	// simplest correct policy: expire after a short deadline.
	go func() {
		time.Sleep(500 * time.Millisecond)
		c.mu.Lock()
		delete(c.pending, t.ID)
		c.mu.Unlock()
	}()
}

// publishExternalView writes the routable view (who masters what) for
// spectators such as the Espresso router.
func (c *Controller) publishExternalView(resource string, view Assignment) {
	data, err := json.Marshal(view)
	if err != nil {
		return
	}
	p := base(c.clusterName) + "/externalview/" + resource
	if ok, _ := c.sess.Exists(p); !ok {
		_ = c.sess.CreateAll(p, data)
		return
	}
	_, _ = c.sess.Set(p, data, -1)
}

// ExternalView reads the current external view for a resource.
func (c *Controller) ExternalView(resource string) (Assignment, error) {
	return readExternalView(c.sess, c.clusterName, resource)
}

func readExternalView(sess *zk.Session, clusterName, resource string) (Assignment, error) {
	data, _, err := sess.Get(base(clusterName) + "/externalview/" + resource)
	if err != nil {
		return nil, err
	}
	var a Assignment
	if len(data) == 0 {
		return Assignment{}, nil
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return a, nil
}

// Close stops the control loop and the session.
func (c *Controller) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
	c.sess.Close()
}

// Spectator provides read-only access to the external view — the routing
// table consumers like the Espresso router use.
type Spectator struct {
	clusterName string
	sess        *zk.Session
}

// NewSpectator opens a read-only view of the cluster.
func NewSpectator(srv *zk.Server, clusterName string) *Spectator {
	return &Spectator{clusterName: clusterName, sess: srv.NewSession()}
}

// ExternalView reads the routable assignment for resource.
func (s *Spectator) ExternalView(resource string) (Assignment, error) {
	return readExternalView(s.sess, s.clusterName, resource)
}

// MasterOf returns the instance currently mastering partition p of resource.
func (s *Spectator) MasterOf(resource string, p int) (string, error) {
	view, err := s.ExternalView(resource)
	if err != nil {
		return "", err
	}
	inst, ok := view.MasterOf(p)
	if !ok {
		return "", fmt.Errorf("helix: no master for %s partition %d", resource, p)
	}
	return inst, nil
}

// Close releases the session.
func (s *Spectator) Close() { s.sess.Close() }

// msgPath helpers shared with participants.
func messagesDir(clusterName, instance string) string {
	return path.Join(base(clusterName), "messages", instance)
}
