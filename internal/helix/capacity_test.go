package helix

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/zk"
)

func TestWeightedIdealStateProportional(t *testing.T) {
	r := &Resource{Name: "db", NumPartitions: 12, Replicas: 2}
	ideal := WeightedIdealState(r, map[string]int{"big": 2, "small1": 1, "small2": 1})
	counts := MasterCounts(ideal)
	// capacity 2:1:1 over 12 partitions -> 6:3:3 masters
	if counts["big"] != 6 || counts["small1"] != 3 || counts["small2"] != 3 {
		t.Fatalf("master counts = %v", counts)
	}
	for p := 0; p < 12; p++ {
		m := ideal[p]
		if len(m) != 2 {
			t.Fatalf("partition %d has %d replicas", p, len(m))
		}
		masters, slaves := 0, 0
		for _, st := range m {
			switch st {
			case StateMaster:
				masters++
			case StateSlave:
				slaves++
			}
		}
		if masters != 1 || slaves != 1 {
			t.Fatalf("partition %d roles: %v", p, m)
		}
	}
}

func TestWeightedIdealStateRemainders(t *testing.T) {
	// 10 partitions over capacities 3:2 -> 6:4
	r := &Resource{Name: "db", NumPartitions: 10, Replicas: 1}
	ideal := WeightedIdealState(r, map[string]int{"a": 3, "b": 2})
	counts := MasterCounts(ideal)
	if counts["a"] != 6 || counts["b"] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	// total master assignments always equal partitions
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
}

func TestWeightedIdealStateDegenerate(t *testing.T) {
	r := &Resource{Name: "db", NumPartitions: 4, Replicas: 2}
	if got := WeightedIdealState(r, nil); len(MasterCounts(got)) != 0 {
		t.Fatal("empty capacity produced masters")
	}
	if got := WeightedIdealState(r, map[string]int{"dead": 0}); len(MasterCounts(got)) != 0 {
		t.Fatal("zero capacity produced masters")
	}
	// single instance: replicas capped at 1
	got := WeightedIdealState(r, map[string]int{"solo": 5})
	for p, m := range got {
		if len(m) != 1 {
			t.Fatalf("partition %d has %d replicas with one instance", p, len(m))
		}
	}
}

func drainAlerts(ch <-chan Alert) []Alert {
	var out []Alert
	for {
		select {
		case a := <-ch:
			out = append(out, a)
		default:
			return out
		}
	}
}

func TestHealthMonitorDetectsJoinAndDeath(t *testing.T) {
	srv := zk.NewServer()
	if _, err := NewController(srv, "hm"); err != nil { // creates the tree
		t.Fatal(err)
	}
	mon := NewHealthMonitor(srv, "hm", 2)
	defer mon.Close()

	p1, err := NewParticipant(srv, "hm", "n1", StateModelFunc(func(Transition) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewParticipant(srv, "hm", "n2", StateModelFunc(func(Transition) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	waitAlert := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			for _, a := range drainAlerts(mon.Alerts()) {
				if a.Message == want || (len(a.Message) >= len(want) && a.Message[:len(want)] == want) {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("never saw alert %q", want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitAlert("instance joined")

	// killing n1 drops below the SLA floor of 2
	p1.Close()
	waitAlert("instance DOWN")
	waitAlert("SLA violation")

	deadline := time.Now().Add(5 * time.Second)
	for len(mon.Live()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Live() = %v", mon.Live())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWeightedIdealStateServesAllPartitions(t *testing.T) {
	for n := 1; n <= 5; n++ {
		caps := map[string]int{}
		for i := 0; i < n; i++ {
			caps[fmt.Sprintf("i%d", i)] = 1 + i%3
		}
		r := &Resource{Name: "db", NumPartitions: 16, Replicas: 2}
		ideal := WeightedIdealState(r, caps)
		for p := 0; p < 16; p++ {
			if _, ok := ideal.MasterOf(p); !ok {
				t.Fatalf("n=%d: partition %d unmastered", n, p)
			}
		}
	}
}
