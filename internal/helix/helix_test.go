package helix

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/zk"
)

func TestLegalNext(t *testing.T) {
	cases := []struct {
		from, to, next State
		changed        bool
	}{
		{StateOffline, StateMaster, StateSlave, true},
		{StateOffline, StateSlave, StateSlave, true},
		{StateSlave, StateMaster, StateMaster, true},
		{StateSlave, StateOffline, StateOffline, true},
		{StateMaster, StateOffline, StateSlave, true},
		{StateMaster, StateSlave, StateSlave, true},
		{StateMaster, StateMaster, StateMaster, false},
	}
	for _, c := range cases {
		next, changed := legalNext(c.from, c.to)
		if next != c.next || changed != c.changed {
			t.Errorf("legalNext(%s,%s) = (%s,%v), want (%s,%v)", c.from, c.to, next, changed, c.next, c.changed)
		}
	}
}

func TestIdealStateLayout(t *testing.T) {
	r := &Resource{Name: "db", NumPartitions: 6, Replicas: 2}
	ideal := IdealState(r, []string{"n1", "n0", "n2"})
	if len(ideal) != 6 {
		t.Fatalf("ideal covers %d partitions", len(ideal))
	}
	masters := map[string]int{}
	for p := 0; p < 6; p++ {
		m := ideal[p]
		if len(m) != 2 {
			t.Fatalf("partition %d has %d replicas, want 2", p, len(m))
		}
		master, ok := ideal.MasterOf(p)
		if !ok {
			t.Fatalf("partition %d has no master", p)
		}
		masters[master]++
		nSlaves := 0
		for _, st := range m {
			if st == StateSlave {
				nSlaves++
			}
		}
		if nSlaves != 1 {
			t.Fatalf("partition %d has %d slaves", p, nSlaves)
		}
	}
	// round-robin: masters spread evenly (2 each over 3 nodes, 6 partitions)
	for inst, n := range masters {
		if n != 2 {
			t.Fatalf("instance %s masters %d partitions, want 2 (got %v)", inst, n, masters)
		}
	}
}

func TestIdealStateReplicasCappedByInstances(t *testing.T) {
	r := &Resource{Name: "db", NumPartitions: 2, Replicas: 3}
	ideal := IdealState(r, []string{"only"})
	for p, m := range ideal {
		if len(m) != 1 {
			t.Fatalf("partition %d: %d replicas with a single instance", p, len(m))
		}
	}
}

func TestBestPossiblePromotesSlave(t *testing.T) {
	r := &Resource{Name: "db", NumPartitions: 4, Replicas: 2}
	all := []string{"a", "b", "c"}
	ideal := IdealState(r, all)
	// kill the master of partition 0
	dead, _ := ideal.MasterOf(0)
	var live []string
	for _, inst := range all {
		if inst != dead {
			live = append(live, inst)
		}
	}
	best := BestPossible(r, ideal, live)
	newMaster, ok := best.MasterOf(0)
	if !ok {
		t.Fatal("partition 0 lost its master entirely")
	}
	if newMaster == dead {
		t.Fatal("dead instance still master")
	}
	// the previous slave should be promoted
	if ideal[0][newMaster] != StateSlave {
		t.Fatalf("promoted %q which was not the slave (%v)", newMaster, ideal[0])
	}
	// replica count restored by drafting a third node
	if len(best[0]) != 2 {
		t.Fatalf("partition 0 has %d replicas after failover, want 2", len(best[0]))
	}
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	a := Assignment{0: {"x": StateMaster}, 3: {"y": StateSlave}}
	data, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Assignment
	if err := got.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatalf("round trip mismatch: %v vs %v", got, a)
	}
}

func TestDiffNeverSkipsStates(t *testing.T) {
	current := Assignment{0: {}}
	target := Assignment{0: {"a": StateMaster}}
	ts := diff("r", current, target)
	if len(ts) != 1 || ts[0].From != StateOffline || ts[0].To != StateSlave {
		t.Fatalf("diff = %+v, want single OFFLINE->SLAVE", ts)
	}
}

func TestDiffDemotesBeforePromoting(t *testing.T) {
	current := Assignment{0: {"a": StateMaster, "b": StateSlave}}
	target := Assignment{0: {"a": StateSlave, "b": StateMaster}}
	ts := diff("r", current, target)
	if len(ts) < 2 {
		t.Fatalf("diff = %+v", ts)
	}
	if ts[0].Instance != "a" || ts[0].To != StateSlave {
		t.Fatalf("first transition %+v, want demotion of a", ts[0])
	}
}

// tracker is a StateModel recording transitions.
type tracker struct {
	mu    sync.Mutex
	order []Transition
}

func (tr *tracker) Apply(t Transition) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.order = append(tr.order, t)
	return nil
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestControllerConvergesToIdeal(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	parts := make([]*Participant, 3)
	for i := range parts {
		p, err := NewParticipant(srv, "c1", fmt.Sprintf("node-%d", i), &tracker{})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
		defer p.Close()
	}
	res := &Resource{Name: "db", NumPartitions: 6, Replicas: 2}
	if err := ctrl.AddResource(res); err != nil {
		t.Fatal(err)
	}
	ctrl.Start()

	waitFor(t, "convergence to ideal", 5*time.Second, func() bool {
		masters := 0
		slaves := 0
		for _, p := range parts {
			for _, st := range p.States("db") {
				switch st {
				case StateMaster:
					masters++
				case StateSlave:
					slaves++
				}
			}
		}
		return masters == 6 && slaves == 6
	})

	// no partition has two masters
	masterOf := map[int]string{}
	for _, p := range parts {
		for part, st := range p.States("db") {
			if st == StateMaster {
				if prev, dup := masterOf[part]; dup {
					t.Fatalf("partition %d mastered by both %s and %s", part, prev, p.Instance())
				}
				masterOf[part] = p.Instance()
			}
		}
	}
}

func TestControllerFailover(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "c2")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	models := make([]*tracker, 3)
	parts := make([]*Participant, 3)
	for i := range parts {
		models[i] = &tracker{}
		p, err := NewParticipant(srv, "c2", fmt.Sprintf("node-%d", i), models[i])
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	res := &Resource{Name: "db", NumPartitions: 4, Replicas: 2}
	ctrl.AddResource(res)
	ctrl.Start()

	countMasters := func() int {
		n := 0
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, st := range p.States("db") {
				if st == StateMaster {
					n++
				}
			}
		}
		return n
	}
	waitFor(t, "initial convergence", 5*time.Second, func() bool { return countMasters() == 4 })

	// Kill node-0: its ephemeral disappears, controller must promote slaves.
	victim := parts[0]
	parts[0] = nil
	victim.Close()

	waitFor(t, "failover", 5*time.Second, func() bool { return countMasters() == 4 })

	// The survivors must cover all 4 partitions with masters.
	covered := map[int]bool{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for part, st := range p.States("db") {
			if st == StateMaster {
				covered[part] = true
			}
		}
	}
	if len(covered) != 4 {
		t.Fatalf("masters cover %d/4 partitions after failover", len(covered))
	}
	for _, p := range parts {
		if p != nil {
			p.Close()
		}
	}
}

func TestExternalViewPublished(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "c3")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	p, err := NewParticipant(srv, "c3", "solo", &tracker{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctrl.AddResource(&Resource{Name: "db", NumPartitions: 2, Replicas: 1})
	ctrl.Start()

	spec := NewSpectator(srv, "c3")
	defer spec.Close()
	waitFor(t, "external view", 5*time.Second, func() bool {
		inst, err := spec.MasterOf("db", 0)
		return err == nil && inst == "solo"
	})
}

func TestTransitionsArriveInLegalOrder(t *testing.T) {
	srv := zk.NewServer()
	ctrl, err := NewController(srv, "c4")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	model := &tracker{}
	p, err := NewParticipant(srv, "c4", "solo", model)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctrl.AddResource(&Resource{Name: "db", NumPartitions: 1, Replicas: 1})
	ctrl.Start()

	waitFor(t, "mastering", 5*time.Second, func() bool {
		return p.States("db")[0] == StateMaster
	})
	model.mu.Lock()
	defer model.mu.Unlock()
	if len(model.order) < 2 {
		t.Fatalf("transitions = %+v", model.order)
	}
	if model.order[0].To != StateSlave || model.order[1].To != StateMaster {
		t.Fatalf("order = %+v, want OFFLINE->SLAVE then SLAVE->MASTER", model.order)
	}
}
