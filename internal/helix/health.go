package helix

import (
	"fmt"
	"sync"
	"time"

	"datainfra/internal/zk"
)

// Alert is one health-check finding (§IV.B: Helix "monitors cluster health
// and provides alerts on SLA violations").
type Alert struct {
	Time     time.Time
	Instance string // empty for cluster-level alerts
	Message  string
}

// HealthMonitor watches the cluster's live-instance set and raises alerts
// when instances disappear or the live count drops below a minimum (the SLA
// floor).
type HealthMonitor struct {
	clusterName string
	sess        *zk.Session
	minLive     int

	mu    sync.Mutex
	known map[string]bool

	alerts chan Alert
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewHealthMonitor starts watching. minLive is the SLA floor for live
// instances; alerts arrive on Alerts().
func NewHealthMonitor(srv *zk.Server, clusterName string, minLive int) *HealthMonitor {
	m := &HealthMonitor{
		clusterName: clusterName,
		sess:        srv.NewSession(),
		minLive:     minLive,
		known:       map[string]bool{},
		alerts:      make(chan Alert, 64),
		stop:        make(chan struct{}),
	}
	m.wg.Add(1)
	go m.run()
	return m
}

// Alerts delivers findings; the channel drops when full rather than
// blocking the monitor.
func (m *HealthMonitor) Alerts() <-chan Alert { return m.alerts }

func (m *HealthMonitor) raise(instance, format string, args ...any) {
	select {
	case m.alerts <- Alert{Time: time.Now(), Instance: instance, Message: fmt.Sprintf(format, args...)}:
	default:
	}
}

func (m *HealthMonitor) run() {
	defer m.wg.Done()
	dir := base(m.clusterName) + "/instances"
	for {
		live, watch, err := m.sess.WatchChildren(dir)
		if err != nil {
			return
		}
		m.observe(live)
		select {
		case <-m.stop:
			return
		case <-watch:
		case <-time.After(time.Second):
		}
	}
}

func (m *HealthMonitor) observe(live []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	current := map[string]bool{}
	for _, inst := range live {
		current[inst] = true
		if !m.known[inst] {
			m.known[inst] = true
			m.raise(inst, "instance joined")
		}
	}
	for inst := range m.known {
		if m.known[inst] && !current[inst] {
			m.known[inst] = false
			m.raise(inst, "instance DOWN")
		}
	}
	if len(live) < m.minLive {
		m.raise("", "SLA violation: %d live instances, minimum %d", len(live), m.minLive)
	}
}

// Live reports the currently-live instances the monitor has seen.
func (m *HealthMonitor) Live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for inst, up := range m.known {
		if up {
			out = append(out, inst)
		}
	}
	return out
}

// Close stops the monitor.
func (m *HealthMonitor) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
	m.sess.Close()
}
