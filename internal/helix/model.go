// Package helix is the generic cluster manager of §IV.B: a controller
// observes cluster changes through the coordination service (package zk),
// computes the BESTPOSSIBLESTATE — the state closest to the IDEALSTATE given
// the currently live nodes — and issues state-machine transitions to
// participants until the CURRENTSTATE converges. Two state models are
// bundled: MasterSlave (the one Espresso partitions use) and LeaderStandby
// (the one replicated Kafka partitions use); both are three-state chains
// OFFLINE <-> <mid> <-> <top> differing only in role names.
package helix

import (
	"encoding/json"
	"fmt"
	"sort"
)

// State is a node's role for one partition.
type State string

// MasterSlave and LeaderStandby model states. Both models share OFFLINE.
const (
	StateOffline State = "OFFLINE"
	StateSlave   State = "SLAVE"
	StateMaster  State = "MASTER"
	StateStandby State = "STANDBY"
	StateLeader  State = "LEADER"
)

// StateModelDef names a bundled state machine.
type StateModelDef string

// Bundled state models.
const (
	ModelMasterSlave   StateModelDef = "MasterSlave"
	ModelLeaderStandby StateModelDef = "LeaderStandby"
)

// top returns the model's highest state (one instance per partition).
func (m StateModelDef) top() State {
	if m == ModelLeaderStandby {
		return StateLeader
	}
	return StateMaster
}

// mid returns the model's intermediate state (the catch-up role).
func (m StateModelDef) mid() State {
	if m == ModelLeaderStandby {
		return StateStandby
	}
	return StateSlave
}

// legalNext returns the next hop from 'from' toward 'to' in the MasterSlave
// transition graph: OFFLINE <-> SLAVE <-> MASTER. Transitions never skip a
// step (an offline replica must become a slave — and catch up — before it
// can master a partition).
func legalNext(from, to State) (State, bool) {
	return legalNextModel(ModelMasterSlave, from, to)
}

// legalNextModel is legalNext generalised over the three-state chain of any
// bundled model: OFFLINE <-> mid <-> top, never skipping a step (an offline
// replica must pass through the catch-up role before it can lead).
func legalNextModel(m StateModelDef, from, to State) (State, bool) {
	if from == to {
		return to, false
	}
	switch rank(from) {
	case 0:
		return m.mid(), true
	case 1:
		if rank(to) == 2 {
			return m.top(), true
		}
		return StateOffline, true
	case 2:
		return m.mid(), true
	}
	return to, false
}

// Resource is a partitioned, replicated entity managed by Helix (an Espresso
// database, a relay group, a Kafka topic, ...).
type Resource struct {
	Name          string `json:"name"`
	NumPartitions int    `json:"numPartitions"`
	Replicas      int    `json:"replicas"` // total replicas incl. master/leader
	// StateModel selects the transition graph; empty means MasterSlave.
	StateModel StateModelDef `json:"stateModel,omitempty"`
}

// Model returns the resource's state model, defaulting to MasterSlave.
func (r *Resource) Model() StateModelDef {
	if r.StateModel == "" {
		return ModelMasterSlave
	}
	return r.StateModel
}

// Validate checks the resource definition.
func (r *Resource) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("helix: resource name empty")
	}
	if r.NumPartitions <= 0 {
		return fmt.Errorf("helix: resource %q: numPartitions %d", r.Name, r.NumPartitions)
	}
	if r.Replicas <= 0 {
		return fmt.Errorf("helix: resource %q: replicas %d", r.Name, r.Replicas)
	}
	return nil
}

// Assignment maps partition -> instance -> state. It is the shape of the
// IDEALSTATE, the CURRENTSTATE and the BESTPOSSIBLESTATE alike.
type Assignment map[int]map[string]State

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for p, m := range a {
		cp := make(map[string]State, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[p] = cp
	}
	return out
}

// MasterOf returns the instance holding partition p's top state (MASTER or
// LEADER, depending on the resource's model), if any.
func (a Assignment) MasterOf(p int) (string, bool) {
	for inst, st := range a[p] {
		if rank(st) == 2 {
			return inst, true
		}
	}
	return "", false
}

// Equal reports deep equality.
func (a Assignment) Equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for p, m := range a {
		bm, ok := b[p]
		if !ok || len(m) != len(bm) {
			return false
		}
		for inst, st := range m {
			if bm[inst] != st {
				return false
			}
		}
	}
	return true
}

// MarshalJSON encodes with string partition keys for readability in zk.
func (a Assignment) MarshalJSON() ([]byte, error) {
	out := make(map[string]map[string]State, len(a))
	for p, m := range a {
		out[fmt.Sprintf("%d", p)] = m
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the string-keyed form.
func (a *Assignment) UnmarshalJSON(data []byte) error {
	var raw map[string]map[string]State
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Assignment, len(raw))
	for k, m := range raw {
		var p int
		if _, err := fmt.Sscanf(k, "%d", &p); err != nil {
			return fmt.Errorf("helix: bad partition key %q", k)
		}
		out[p] = m
	}
	*a = out
	return nil
}

// IdealState computes the full-strength assignment for a resource over the
// given instance set: preference lists are round-robin so masters spread
// evenly, exactly the layout of Figure IV.3.
func IdealState(r *Resource, instances []string) Assignment {
	sorted := append([]string(nil), instances...)
	sort.Strings(sorted)
	out := make(Assignment, r.NumPartitions)
	n := len(sorted)
	if n == 0 {
		return out
	}
	replicas := r.Replicas
	if replicas > n {
		replicas = n
	}
	model := r.Model()
	for p := 0; p < r.NumPartitions; p++ {
		m := make(map[string]State, replicas)
		for i := 0; i < replicas; i++ {
			inst := sorted[(p+i)%n]
			if i == 0 {
				m[inst] = model.top()
			} else {
				m[inst] = model.mid()
			}
		}
		out[p] = m
	}
	return out
}

// BestPossible restricts ideal to live instances: for each partition the
// first live instance in preference order masters it, the remaining live
// replicas slave. When a preferred replica is dead, the next live instance
// (in global sorted order) is drafted to keep the replica count.
func BestPossible(r *Resource, ideal Assignment, live []string) Assignment {
	return BestPossibleWithPreference(r, ideal, live, nil)
}

// PreferenceFilter reorders (or prunes) the live candidate list for one
// partition before states are assigned; chosen[0] gets the top state. It lets
// an application constrain leader election — e.g. Kafka promotes only ISR
// members so a high-watermark-acked message can never be lost to a stale
// replica winning the election.
type PreferenceFilter func(partition int, chosen []string) []string

// BestPossibleWithPreference is BestPossible with an application hook: after
// the live preference list for a partition is assembled, prefFn may reorder
// it. A nil prefFn (or a nil/empty return) keeps the default order.
func BestPossibleWithPreference(r *Resource, ideal Assignment, live []string, prefFn PreferenceFilter) Assignment {
	liveSet := make(map[string]bool, len(live))
	for _, inst := range live {
		liveSet[inst] = true
	}
	sortedLive := append([]string(nil), live...)
	sort.Strings(sortedLive)
	model := r.Model()
	out := make(Assignment, len(ideal))
	for p, m := range ideal {
		// preference order: master/leader first, then the rest sorted by name.
		var pref []string
		for inst, st := range m {
			if rank(st) == 2 {
				pref = append(pref, inst)
				break
			}
		}
		var mids []string
		for inst, st := range m {
			if rank(st) == 1 {
				mids = append(mids, inst)
			}
		}
		sort.Strings(mids)
		pref = append(pref, mids...)

		chosen := make([]string, 0, len(pref))
		for _, inst := range pref {
			if liveSet[inst] {
				chosen = append(chosen, inst)
			}
		}
		// Draft replacements to restore the replica count.
		want := len(pref)
		if want > len(sortedLive) {
			want = len(sortedLive)
		}
		for _, inst := range sortedLive {
			if len(chosen) >= want {
				break
			}
			already := false
			for _, c := range chosen {
				if c == inst {
					already = true
					break
				}
			}
			if !already {
				chosen = append(chosen, inst)
			}
		}
		if prefFn != nil {
			if reordered := prefFn(p, append([]string(nil), chosen...)); len(reordered) > 0 {
				chosen = reordered
			}
		}
		pm := make(map[string]State, len(chosen))
		for i, inst := range chosen {
			if i == 0 {
				pm[inst] = model.top()
			} else {
				pm[inst] = model.mid()
			}
		}
		out[p] = pm
	}
	return out
}

// Transition is one state-machine step issued by the controller to a
// participant.
type Transition struct {
	ID        string `json:"id"`
	Instance  string `json:"instance"`
	Resource  string `json:"resource"`
	Partition int    `json:"partition"`
	From      State  `json:"from"`
	To        State  `json:"to"`
}

// diff computes the next-hop transitions taking current toward target in the
// MasterSlave model. Instances present in current but absent from target are
// driven to OFFLINE.
func diff(resource string, current, target Assignment) []Transition {
	return diffModel(ModelMasterSlave, resource, current, target)
}

// diffModel is diff generalised over a state model.
func diffModel(model StateModelDef, resource string, current, target Assignment) []Transition {
	var out []Transition
	partitions := map[int]bool{}
	for p := range current {
		partitions[p] = true
	}
	for p := range target {
		partitions[p] = true
	}
	// Deterministic order for tests and reproducibility.
	var plist []int
	for p := range partitions {
		plist = append(plist, p)
	}
	sort.Ints(plist)
	for _, p := range plist {
		instances := map[string]bool{}
		for inst := range current[p] {
			instances[inst] = true
		}
		for inst := range target[p] {
			instances[inst] = true
		}
		var ilist []string
		for inst := range instances {
			ilist = append(ilist, inst)
		}
		sort.Strings(ilist)

		// Demotions and offlining first so a partition never has two masters.
		for _, phase := range []bool{true, false} {
			for _, inst := range ilist {
				cur, ok := current[p][inst]
				if !ok {
					cur = StateOffline
				}
				want, ok := target[p][inst]
				if !ok {
					want = StateOffline
				}
				next, changed := legalNextModel(model, cur, want)
				if !changed {
					continue
				}
				demotion := rank(next) < rank(cur)
				if phase != demotion {
					continue
				}
				out = append(out, Transition{
					ID:        fmt.Sprintf("%s-%d-%s-%s>%s", resource, p, inst, cur, next),
					Instance:  inst,
					Resource:  resource,
					Partition: p,
					From:      cur,
					To:        next,
				})
			}
		}
	}
	return out
}

func rank(s State) int {
	switch s {
	case StateMaster, StateLeader:
		return 2
	case StateSlave, StateStandby:
		return 1
	default:
		return 0
	}
}
