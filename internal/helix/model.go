// Package helix is the generic cluster manager of §IV.B: a controller
// observes cluster changes through the coordination service (package zk),
// computes the BESTPOSSIBLESTATE — the state closest to the IDEALSTATE given
// the currently live nodes — and issues state-machine transitions to
// participants until the CURRENTSTATE converges. The bundled state model is
// MasterSlave, the one Espresso partitions use.
package helix

import (
	"encoding/json"
	"fmt"
	"sort"
)

// State is a node's role for one partition in the MasterSlave model.
type State string

// MasterSlave model states.
const (
	StateOffline State = "OFFLINE"
	StateSlave   State = "SLAVE"
	StateMaster  State = "MASTER"
)

// legalNext returns the next hop from 'from' toward 'to' in the MasterSlave
// transition graph: OFFLINE <-> SLAVE <-> MASTER. Transitions never skip a
// step (an offline replica must become a slave — and catch up — before it
// can master a partition).
func legalNext(from, to State) (State, bool) {
	if from == to {
		return to, false
	}
	switch from {
	case StateOffline:
		return StateSlave, true
	case StateSlave:
		if to == StateMaster {
			return StateMaster, true
		}
		return StateOffline, true
	case StateMaster:
		return StateSlave, true
	}
	return to, false
}

// Resource is a partitioned, replicated entity managed by Helix (an Espresso
// database, a relay group, ...).
type Resource struct {
	Name          string `json:"name"`
	NumPartitions int    `json:"numPartitions"`
	Replicas      int    `json:"replicas"` // total replicas incl. master
}

// Validate checks the resource definition.
func (r *Resource) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("helix: resource name empty")
	}
	if r.NumPartitions <= 0 {
		return fmt.Errorf("helix: resource %q: numPartitions %d", r.Name, r.NumPartitions)
	}
	if r.Replicas <= 0 {
		return fmt.Errorf("helix: resource %q: replicas %d", r.Name, r.Replicas)
	}
	return nil
}

// Assignment maps partition -> instance -> state. It is the shape of the
// IDEALSTATE, the CURRENTSTATE and the BESTPOSSIBLESTATE alike.
type Assignment map[int]map[string]State

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for p, m := range a {
		cp := make(map[string]State, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[p] = cp
	}
	return out
}

// MasterOf returns the instance mastering partition p, if any.
func (a Assignment) MasterOf(p int) (string, bool) {
	for inst, st := range a[p] {
		if st == StateMaster {
			return inst, true
		}
	}
	return "", false
}

// Equal reports deep equality.
func (a Assignment) Equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for p, m := range a {
		bm, ok := b[p]
		if !ok || len(m) != len(bm) {
			return false
		}
		for inst, st := range m {
			if bm[inst] != st {
				return false
			}
		}
	}
	return true
}

// MarshalJSON encodes with string partition keys for readability in zk.
func (a Assignment) MarshalJSON() ([]byte, error) {
	out := make(map[string]map[string]State, len(a))
	for p, m := range a {
		out[fmt.Sprintf("%d", p)] = m
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the string-keyed form.
func (a *Assignment) UnmarshalJSON(data []byte) error {
	var raw map[string]map[string]State
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Assignment, len(raw))
	for k, m := range raw {
		var p int
		if _, err := fmt.Sscanf(k, "%d", &p); err != nil {
			return fmt.Errorf("helix: bad partition key %q", k)
		}
		out[p] = m
	}
	*a = out
	return nil
}

// IdealState computes the full-strength assignment for a resource over the
// given instance set: preference lists are round-robin so masters spread
// evenly, exactly the layout of Figure IV.3.
func IdealState(r *Resource, instances []string) Assignment {
	sorted := append([]string(nil), instances...)
	sort.Strings(sorted)
	out := make(Assignment, r.NumPartitions)
	n := len(sorted)
	if n == 0 {
		return out
	}
	replicas := r.Replicas
	if replicas > n {
		replicas = n
	}
	for p := 0; p < r.NumPartitions; p++ {
		m := make(map[string]State, replicas)
		for i := 0; i < replicas; i++ {
			inst := sorted[(p+i)%n]
			if i == 0 {
				m[inst] = StateMaster
			} else {
				m[inst] = StateSlave
			}
		}
		out[p] = m
	}
	return out
}

// BestPossible restricts ideal to live instances: for each partition the
// first live instance in preference order masters it, the remaining live
// replicas slave. When a preferred replica is dead, the next live instance
// (in global sorted order) is drafted to keep the replica count.
func BestPossible(r *Resource, ideal Assignment, live []string) Assignment {
	liveSet := make(map[string]bool, len(live))
	for _, inst := range live {
		liveSet[inst] = true
	}
	sortedLive := append([]string(nil), live...)
	sort.Strings(sortedLive)
	out := make(Assignment, len(ideal))
	for p, m := range ideal {
		// preference order: master first, then slaves sorted by name.
		var pref []string
		for inst, st := range m {
			if st == StateMaster {
				pref = append(pref, inst)
				break
			}
		}
		var slaves []string
		for inst, st := range m {
			if st == StateSlave {
				slaves = append(slaves, inst)
			}
		}
		sort.Strings(slaves)
		pref = append(pref, slaves...)

		chosen := make([]string, 0, len(pref))
		for _, inst := range pref {
			if liveSet[inst] {
				chosen = append(chosen, inst)
			}
		}
		// Draft replacements to restore the replica count.
		want := len(pref)
		if want > len(sortedLive) {
			want = len(sortedLive)
		}
		for _, inst := range sortedLive {
			if len(chosen) >= want {
				break
			}
			already := false
			for _, c := range chosen {
				if c == inst {
					already = true
					break
				}
			}
			if !already {
				chosen = append(chosen, inst)
			}
		}
		pm := make(map[string]State, len(chosen))
		for i, inst := range chosen {
			if i == 0 {
				pm[inst] = StateMaster
			} else {
				pm[inst] = StateSlave
			}
		}
		out[p] = pm
	}
	return out
}

// Transition is one state-machine step issued by the controller to a
// participant.
type Transition struct {
	ID        string `json:"id"`
	Instance  string `json:"instance"`
	Resource  string `json:"resource"`
	Partition int    `json:"partition"`
	From      State  `json:"from"`
	To        State  `json:"to"`
}

// diff computes the next-hop transitions taking current toward target.
// Instances present in current but absent from target are driven to OFFLINE.
func diff(resource string, current, target Assignment) []Transition {
	var out []Transition
	partitions := map[int]bool{}
	for p := range current {
		partitions[p] = true
	}
	for p := range target {
		partitions[p] = true
	}
	// Deterministic order for tests and reproducibility.
	var plist []int
	for p := range partitions {
		plist = append(plist, p)
	}
	sort.Ints(plist)
	for _, p := range plist {
		instances := map[string]bool{}
		for inst := range current[p] {
			instances[inst] = true
		}
		for inst := range target[p] {
			instances[inst] = true
		}
		var ilist []string
		for inst := range instances {
			ilist = append(ilist, inst)
		}
		sort.Strings(ilist)

		// Demotions and offlining first so a partition never has two masters.
		for _, phase := range []bool{true, false} {
			for _, inst := range ilist {
				cur, ok := current[p][inst]
				if !ok {
					cur = StateOffline
				}
				want, ok := target[p][inst]
				if !ok {
					want = StateOffline
				}
				next, changed := legalNext(cur, want)
				if !changed {
					continue
				}
				demotion := rank(next) < rank(cur)
				if phase != demotion {
					continue
				}
				out = append(out, Transition{
					ID:        fmt.Sprintf("%s-%d-%s-%s>%s", resource, p, inst, cur, next),
					Instance:  inst,
					Resource:  resource,
					Partition: p,
					From:      cur,
					To:        next,
				})
			}
		}
	}
	return out
}

func rank(s State) int {
	switch s {
	case StateMaster:
		return 2
	case StateSlave:
		return 1
	default:
		return 0
	}
}
