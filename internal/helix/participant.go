package helix

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"datainfra/internal/zk"
)

// StateModel receives the transition callbacks — the application logic run
// when a partition changes role on this instance (e.g. an Espresso storage
// node catching up from the Databus relay before mastering).
type StateModel interface {
	// Apply performs the transition; returning an error leaves the replica in
	// its previous state (the controller will retry).
	Apply(t Transition) error
}

// StateModelFunc adapts a function to StateModel.
type StateModelFunc func(t Transition) error

// Apply calls f.
func (f StateModelFunc) Apply(t Transition) error { return f(t) }

// Participant is a managed node: it registers a live ephemeral, consumes
// transition messages, applies them through the StateModel and reports its
// CURRENTSTATE.
type Participant struct {
	clusterName string
	instance    string
	sess        *zk.Session
	model       StateModel

	mu     sync.Mutex
	states map[string]map[int]State // resource -> partition -> state

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewParticipant registers instance in the cluster and starts the message
// pump.
func NewParticipant(srv *zk.Server, clusterName, instance string, model StateModel) (*Participant, error) {
	sess := srv.NewSession()
	p := &Participant{
		clusterName: clusterName,
		instance:    instance,
		sess:        sess,
		model:       model,
		states:      map[string]map[int]State{},
		stop:        make(chan struct{}),
	}
	// A restarting instance comes back OFFLINE: wipe whatever a previous
	// incarnation under the same name reported (and any transitions still
	// queued for it), so the controller never trusts a dead session's claims.
	for _, dir := range []string{
		base(clusterName) + "/currentstate/" + instance,
		messagesDir(clusterName, instance),
	} {
		if err := sess.CreateAll(dir, nil); err != nil {
			sess.Close()
			return nil, err
		}
		if kids, err := sess.Children(dir); err == nil {
			for _, k := range kids {
				_ = sess.Delete(dir+"/"+k, -1)
			}
		}
	}
	if _, err := sess.Create(base(clusterName)+"/instances/"+instance, nil, zk.FlagEphemeral); err != nil {
		sess.Close()
		return nil, fmt.Errorf("helix: registering %s: %w", instance, err)
	}
	p.wg.Add(1)
	go p.pump()
	return p, nil
}

// Instance returns the participant's id.
func (p *Participant) Instance() string { return p.instance }

// States returns a copy of the partition states this instance holds for
// resource.
func (p *Participant) States(resource string) map[int]State {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := map[int]State{}
	for part, st := range p.states[resource] {
		out[part] = st
	}
	return out
}

// pump consumes transition messages in sequence order.
func (p *Participant) pump() {
	defer p.wg.Done()
	dir := messagesDir(p.clusterName, p.instance)
	for {
		kids, watch, err := p.sess.WatchChildren(dir)
		if err != nil {
			return
		}
		sort.Strings(kids)
		for _, name := range kids {
			msgPath := dir + "/" + name
			data, _, err := p.sess.Get(msgPath)
			if err != nil {
				continue
			}
			var t Transition
			if err := json.Unmarshal(data, &t); err == nil {
				p.apply(t)
			}
			_ = p.sess.Delete(msgPath, -1)
		}
		select {
		case <-p.stop:
			return
		case <-watch:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (p *Participant) apply(t Transition) {
	// Skip stale messages: only apply if our current state matches From.
	p.mu.Lock()
	cur, ok := p.states[t.Resource][t.Partition]
	if !ok {
		cur = StateOffline
	}
	p.mu.Unlock()
	if cur != t.From {
		return
	}
	if err := p.model.Apply(t); err != nil {
		return // controller will reissue
	}
	p.mu.Lock()
	if p.states[t.Resource] == nil {
		p.states[t.Resource] = map[int]State{}
	}
	if t.To == StateOffline {
		delete(p.states[t.Resource], t.Partition)
	} else {
		p.states[t.Resource][t.Partition] = t.To
	}
	snapshot := make(map[string]State, len(p.states[t.Resource]))
	for part, st := range p.states[t.Resource] {
		snapshot[fmt.Sprintf("%d", part)] = st
	}
	p.mu.Unlock()

	data, err := json.Marshal(snapshot)
	if err != nil {
		return
	}
	csPath := base(p.clusterName) + "/currentstate/" + p.instance + "/" + t.Resource
	if ok, _ := p.sess.Exists(csPath); !ok {
		_ = p.sess.CreateAll(csPath, data)
		return
	}
	_, _ = p.sess.Set(csPath, data, -1)
}

// Close deregisters the instance (its ephemeral disappears, which is what
// the controller's failover reacts to) and stops the pump.
func (p *Participant) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
	p.sess.Close()
}
