// Package workload generates the load shapes the paper's production numbers
// come from: Zipfian-distributed popularity and value sizes ("both the
// stores have a Zipfian distribution for their data size", §II.C), uniform
// key spaces, and mixed read/write runners (the 60/40 mix of the largest
// read-write cluster).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws integers in [0, n) with P(i) ∝ 1/(i+1)^s, using the classic
// Gray et al. rejection-inversion-free approximation (precomputed zeta).
type Zipfian struct {
	n     int
	s     float64
	zetaN float64
	r     *rand.Rand
}

// NewZipfian builds a generator over n items with skew s (s=0.99 is the
// conventional YCSB default).
func NewZipfian(n int, s float64, seed int64) *Zipfian {
	if n <= 0 {
		panic("workload: zipfian over empty domain")
	}
	z := &Zipfian{n: n, s: s, r: rand.New(rand.NewSource(seed))}
	z.zetaN = zeta(n, s)
	return z
}

func zeta(n int, s float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
	}
	return sum
}

// Next draws the next item.
func (z *Zipfian) Next() int {
	u := z.r.Float64() * z.zetaN
	sum := 0.0
	for i := 1; i <= z.n; i++ {
		sum += 1 / math.Pow(float64(i), z.s)
		if sum >= u {
			return i - 1
		}
	}
	return z.n - 1
}

// FastZipfian is the O(1) sampler (Gray et al., "Quickly generating
// billion-record synthetic databases") used for large domains.
type FastZipfian struct {
	n               int
	theta           float64
	alpha, zetaN    float64
	eta, zeta2Theta float64
	r               *rand.Rand
}

// NewFastZipfian builds the constant-time sampler.
func NewFastZipfian(n int, theta float64, seed int64) *FastZipfian {
	if n <= 0 {
		panic("workload: zipfian over empty domain")
	}
	z := &FastZipfian{n: n, theta: theta, r: rand.New(rand.NewSource(seed))}
	z.zetaN = zeta(n, theta)
	z.zeta2Theta = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2Theta/z.zetaN)
	return z
}

// Next draws the next item in O(1).
func (z *FastZipfian) Next() int {
	u := z.r.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Uniform draws uniformly from [0, n).
type Uniform struct {
	n int
	r *rand.Rand
}

// NewUniform builds a uniform generator.
func NewUniform(n int, seed int64) *Uniform {
	return &Uniform{n: n, r: rand.New(rand.NewSource(seed))}
}

// Next draws the next item.
func (u *Uniform) Next() int { return u.r.Intn(u.n) }

// Key renders item i of a keyspace as a stable key.
func Key(space string, i int) []byte {
	return []byte(fmt.Sprintf("%s-%012d", space, i))
}

// Value returns a deterministic pseudo-random value of the given size
// (compressible about as well as JSON event text).
func Value(i, size int) []byte {
	out := make([]byte, size)
	r := rand.New(rand.NewSource(int64(i)))
	const corpus = `{"member":1234,"event":"page_view","page":"/in/profile","ts":1700000000}`
	for off := 0; off < size; {
		n := copy(out[off:], corpus[r.Intn(len(corpus)/2):])
		off += n
	}
	return out
}

// SizeZipfian draws value sizes with a Zipfian distribution between min and
// max bytes — the Company Follow list-length shape of §II.C.
type SizeZipfian struct {
	z        *FastZipfian
	min, max int
}

// NewSizeZipfian builds the size sampler over [min,max] with skew theta.
func NewSizeZipfian(min, max int, theta float64, seed int64) *SizeZipfian {
	return &SizeZipfian{z: NewFastZipfian(max-min+1, theta, seed), min: min, max: max}
}

// Next draws a size. Most draws are near min; the tail reaches max.
func (s *SizeZipfian) Next() int {
	return s.min + s.z.Next()
}

// Mix deals read/write operations at the requested read fraction.
type Mix struct {
	readFrac float64
	r        *rand.Rand
}

// NewMix builds an operation mixer; readFrac 0.6 reproduces the paper's
// 60/40 cluster.
func NewMix(readFrac float64, seed int64) *Mix {
	return &Mix{readFrac: readFrac, r: rand.New(rand.NewSource(seed))}
}

// Read reports whether the next operation is a read.
func (m *Mix) Read() bool { return m.r.Float64() < m.readFrac }
