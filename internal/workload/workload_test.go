package workload

import (
	"bytes"
	"testing"
)

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(100, 0.99, 1)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("no skew: head=%d mid=%d", counts[0], counts[50])
	}
	// head item should take a large share under s≈1
	if counts[0] < 20000/20 {
		t.Fatalf("head share too small: %d", counts[0])
	}
}

func TestFastZipfianRangeAndSkew(t *testing.T) {
	z := NewFastZipfian(1000, 0.99, 7)
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[500]*2 {
		t.Fatalf("insufficient skew: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestUniformCoverage(t *testing.T) {
	u := NewUniform(10, 3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d/10", len(seen))
	}
}

func TestKeyStable(t *testing.T) {
	if !bytes.Equal(Key("s", 42), Key("s", 42)) {
		t.Fatal("Key not deterministic")
	}
	if bytes.Equal(Key("s", 1), Key("s", 2)) {
		t.Fatal("Key collision")
	}
}

func TestValueSizeAndDeterminism(t *testing.T) {
	v := Value(7, 1024)
	if len(v) != 1024 {
		t.Fatalf("len = %d", len(v))
	}
	if !bytes.Equal(v, Value(7, 1024)) {
		t.Fatal("Value not deterministic")
	}
}

func TestSizeZipfianBounds(t *testing.T) {
	s := NewSizeZipfian(100, 10000, 0.9, 5)
	sawSmall := false
	for i := 0; i < 5000; i++ {
		n := s.Next()
		if n < 100 || n > 10000 {
			t.Fatalf("size %d out of bounds", n)
		}
		if n < 200 {
			sawSmall = true
		}
	}
	if !sawSmall {
		t.Fatal("no small values — distribution looks wrong")
	}
}

func TestMixFraction(t *testing.T) {
	m := NewMix(0.6, 11)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Read() {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.57 || frac > 0.63 {
		t.Fatalf("read fraction %.3f, want ~0.60", frac)
	}
}
