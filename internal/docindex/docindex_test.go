package docindex

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize(`Lucy in the Sky, with "Diamonds"!`)
	want := []string{"lucy", "in", "the", "sky", "with", "diamonds"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v", got)
	}
	if len(Tokenize("  ,,, ")) != 0 {
		t.Fatal("punctuation-only string yielded tokens")
	}
}

func TestExactQuery(t *testing.T) {
	ix := New()
	ix.Add("d1", "artist", "Etta James", Exact)
	ix.Add("d2", "artist", "Etta James", Exact)
	ix.Add("d3", "artist", "Doris Day", Exact)
	got := ix.QueryExact("artist", "Etta James")
	if !reflect.DeepEqual(got, []string{"d1", "d2"}) {
		t.Fatalf("QueryExact = %v", got)
	}
	if ix.QueryExact("artist", "etta james") != nil {
		t.Fatal("exact match should be case-sensitive")
	}
	if ix.QueryExact("missing", "x") != nil {
		t.Fatal("unknown field matched")
	}
}

func TestTextQueryPaperExample(t *testing.T) {
	ix := New()
	ix.Add("sgt-pepper/lucy", "lyrics", "Picture yourself in a boat on a river... Lucy in the sky with diamonds", Text)
	ix.Add("mmt/walrus", "lyrics", "I am he as you are he... Lucy in disguise", Text)
	ix.Add("abbey/sun", "lyrics", "Here comes the sun", Text)

	got := ix.QueryText("lyrics", `Lucy in the sky`)
	if !reflect.DeepEqual(got, []string{"sgt-pepper/lucy"}) {
		t.Fatalf("phrase query = %v", got)
	}
	// single token matches both Lucy songs
	got = ix.QueryText("lyrics", "lucy")
	if len(got) != 2 {
		t.Fatalf("token query = %v", got)
	}
	// no-hit token
	if ix.QueryText("lyrics", "yellow submarine") != nil {
		t.Fatal("impossible AND matched")
	}
	if ix.QueryText("lyrics", "") != nil {
		t.Fatal("empty query matched")
	}
}

func TestUpdateReindexes(t *testing.T) {
	ix := New()
	ix.Add("doc", "title", "old title here", Text)
	ix.Remove("doc")
	ix.Add("doc", "title", "brand new words", Text)
	if ix.QueryText("title", "old") != nil {
		t.Fatal("stale term survived update")
	}
	if got := ix.QueryText("title", "new"); !reflect.DeepEqual(got, []string{"doc"}) {
		t.Fatalf("new term = %v", got)
	}
}

func TestRemoveDeletesPostings(t *testing.T) {
	ix := New()
	ix.Add("d1", "f", "shared term", Text)
	ix.Add("d2", "f", "shared term", Text)
	ix.Remove("d1")
	if got := ix.QueryText("f", "shared"); !reflect.DeepEqual(got, []string{"d2"}) {
		t.Fatalf("after remove = %v", got)
	}
	if ix.Docs() != 1 {
		t.Fatalf("Docs = %d", ix.Docs())
	}
	ix.Remove("d1") // idempotent
}

func TestMultiFieldIsolation(t *testing.T) {
	ix := New()
	ix.Add("d", "title", "alpha", Text)
	ix.Add("d", "body", "beta", Text)
	if ix.QueryText("title", "beta") != nil {
		t.Fatal("cross-field leak")
	}
}

func TestConcurrentIndexing(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-d%d", g, i)
				ix.Add(id, "f", fmt.Sprintf("common token%d", i%10), Text)
				ix.QueryText("f", "common")
				if i%3 == 0 {
					ix.Remove(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(ix.QueryText("f", "common")); got == 0 {
		t.Fatal("all docs vanished")
	}
}

func BenchmarkQueryText(b *testing.B) {
	ix := New()
	for i := 0; i < 10000; i++ {
		ix.Add(fmt.Sprintf("d%d", i), "lyrics",
			fmt.Sprintf("common words plus unique%d token", i), Text)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryText("lyrics", fmt.Sprintf("unique%d", i%10000))
	}
}
