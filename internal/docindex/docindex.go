// Package docindex is the local secondary index behind Espresso storage
// nodes (§IV.B uses Lucene; this is the substitute): a per-partition
// inverted index over schema-annotated document fields, supporting exact
// match and tokenized free-text queries like
//
//	?query=lyrics:"Lucy in the sky"
package docindex

import (
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Kind selects how a field value is indexed.
type Kind int

// Index kinds.
const (
	Exact Kind = iota // whole-value equality
	Text              // tokenized terms
)

type posting struct {
	field string
	term  string
}

// Index is a thread-safe inverted index mapping (field, term) -> doc ids.
type Index struct {
	mu sync.RWMutex
	// field -> term -> doc id set
	postings map[string]map[string]map[string]struct{}
	// doc id -> its postings, for removal on update/delete
	docs map[string][]posting
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: map[string]map[string]map[string]struct{}{},
		docs:     map[string][]posting{},
	}
}

// Tokenize lowercases and splits on non-alphanumeric runes — the text
// analyzer.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Add indexes value under field for doc. Text kind indexes each token;
// Exact indexes the whole value verbatim.
func (ix *Index) Add(docID, field, value string, kind Kind) {
	var terms []string
	switch kind {
	case Exact:
		terms = []string{value}
	case Text:
		terms = Tokenize(value)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	byTerm, ok := ix.postings[field]
	if !ok {
		byTerm = map[string]map[string]struct{}{}
		ix.postings[field] = byTerm
	}
	for _, term := range terms {
		set, ok := byTerm[term]
		if !ok {
			set = map[string]struct{}{}
			byTerm[term] = set
		}
		if _, dup := set[docID]; !dup {
			set[docID] = struct{}{}
			ix.docs[docID] = append(ix.docs[docID], posting{field: field, term: term})
		}
	}
}

// Remove drops every posting of doc (called before re-indexing an update and
// on delete).
func (ix *Index) Remove(docID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, p := range ix.docs[docID] {
		if byTerm, ok := ix.postings[p.field]; ok {
			if set, ok := byTerm[p.term]; ok {
				delete(set, docID)
				if len(set) == 0 {
					delete(byTerm, p.term)
				}
			}
		}
	}
	delete(ix.docs, docID)
}

// QueryExact returns the sorted doc ids whose field equals value.
func (ix *Index) QueryExact(field, value string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return collect(ix.postings[field][value])
}

// QueryText returns the sorted doc ids containing every token of the query
// in field (an AND query, sufficient for the paper's phrase example).
func (ix *Index) QueryText(field, query string) []string {
	tokens := Tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	byTerm := ix.postings[field]
	if byTerm == nil {
		return nil
	}
	// Intersect starting from the rarest token.
	sets := make([]map[string]struct{}, 0, len(tokens))
	for _, tok := range tokens {
		set, ok := byTerm[tok]
		if !ok {
			return nil
		}
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	var out []string
	for id := range sets[0] {
		all := true
		for _, s := range sets[1:] {
			if _, ok := s[id]; !ok {
				all = false
				break
			}
		}
		if all {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

func collect(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
