// Package versioned pairs opaque byte values with vector clocks and provides
// the version bookkeeping Voldemort performs on every read and write: keeping
// only maximal (mutually concurrent) versions and rejecting obsolete writes.
package versioned

import (
	"encoding/binary"
	"errors"
	"fmt"

	"datainfra/internal/vclock"
)

// ErrObsoleteVersion is returned when a put carries a clock that is dominated
// by (or equal to) an already-stored version. Clients react by re-reading and
// retrying — the optimistic-locking loop encapsulated by ApplyUpdate in the
// voldemort package.
var ErrObsoleteVersion = errors.New("versioned: obsolete version")

// Versioned is a value stamped with the vector clock under which it was
// written.
type Versioned struct {
	Value []byte
	Clock *vclock.Clock
}

// New returns a Versioned wrapping value with a fresh empty clock.
func New(value []byte) *Versioned {
	return &Versioned{Value: value, Clock: vclock.New()}
}

// With returns a Versioned wrapping value under clock.
func With(value []byte, clock *vclock.Clock) *Versioned {
	if clock == nil {
		clock = vclock.New()
	}
	return &Versioned{Value: value, Clock: clock}
}

// Clone deep-copies the versioned value.
func (v *Versioned) Clone() *Versioned {
	val := make([]byte, len(v.Value))
	copy(val, v.Value)
	return &Versioned{Value: val, Clock: v.Clock.Clone()}
}

// String renders the value size and clock.
func (v *Versioned) String() string {
	return fmt.Sprintf("Versioned(%dB @ %v)", len(v.Value), v.Clock)
}

// Add inserts v into versions, enforcing the anti-chain invariant: versions
// holds only mutually concurrent clocks. Versions dominated by v are dropped;
// if an existing version dominates or equals v, ErrObsoleteVersion is
// returned and versions is unchanged.
func Add(versions []*Versioned, v *Versioned) ([]*Versioned, error) {
	out := versions[:0]
	for _, existing := range versions {
		switch v.Clock.Compare(existing.Clock) {
		case vclock.Before, vclock.Equal:
			return versions, fmt.Errorf("%w: put clock %v vs stored %v",
				ErrObsoleteVersion, v.Clock, existing.Clock)
		case vclock.After:
			// drop the dominated version
		case vclock.Concurrent:
			out = append(out, existing)
		}
	}
	return append(out, v), nil
}

// Resolve collapses a multi-version read result to the set of maximal
// versions. Engines maintain the anti-chain themselves, but reads assembled
// from several replicas (quorum reads) can contain comparable versions;
// Resolve removes the dominated ones.
func Resolve(versions []*Versioned) []*Versioned {
	var out []*Versioned
	for _, v := range versions {
		dominated := false
		dup := false
		for _, w := range versions {
			if v == w {
				continue
			}
			switch v.Clock.Compare(w.Clock) {
			case vclock.Before:
				dominated = true
			case vclock.Equal:
				// keep only the first of an equal pair
				for _, o := range out {
					if o.Clock.Compare(v.Clock) == vclock.Equal {
						dup = true
					}
				}
			}
			if dominated || dup {
				break
			}
		}
		if !dominated && !dup {
			out = append(out, v)
		}
	}
	return out
}

// Latest returns the version with the greatest clock if the set is totally
// ordered, or the version with the newest timestamp as a last-writer-wins
// tiebreak when versions are concurrent. ok is false for an empty set.
func Latest(versions []*Versioned) (v *Versioned, ok bool) {
	if len(versions) == 0 {
		return nil, false
	}
	best := versions[0]
	for _, w := range versions[1:] {
		switch w.Clock.Compare(best.Clock) {
		case vclock.After:
			best = w
		case vclock.Concurrent:
			if w.Clock.Timestamp > best.Clock.Timestamp {
				best = w
			}
		}
	}
	return best, true
}

// MarshalBinary encodes the versioned value as
//
//	uint32 clockLen | clock | value
func (v *Versioned) MarshalBinary() ([]byte, error) {
	clk, err := v.Clock.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 4+len(clk)+len(v.Value))
	binary.BigEndian.PutUint32(buf, uint32(len(clk)))
	copy(buf[4:], clk)
	copy(buf[4+len(clk):], v.Value)
	return buf, nil
}

// UnmarshalBinary decodes data written by MarshalBinary.
func (v *Versioned) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return errors.New("versioned: truncated header")
	}
	n := binary.BigEndian.Uint32(data)
	if uint32(len(data)-4) < n {
		return errors.New("versioned: truncated clock")
	}
	clk, err := vclock.Decode(data[4 : 4+n])
	if err != nil {
		return err
	}
	v.Clock = clk
	v.Value = make([]byte, len(data)-4-int(n))
	copy(v.Value, data[4+n:])
	return nil
}
