package versioned

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"datainfra/internal/vclock"
)

func clk(incs ...int32) *vclock.Clock {
	c := vclock.New()
	for _, n := range incs {
		c.Increment(n, 0)
	}
	return c
}

func TestAddRejectsObsolete(t *testing.T) {
	stored := []*Versioned{With([]byte("v2"), clk(1, 1))}
	_, err := Add(stored, With([]byte("v1"), clk(1)))
	if !errors.Is(err, ErrObsoleteVersion) {
		t.Fatalf("Add older clock: err = %v, want ErrObsoleteVersion", err)
	}
	_, err = Add(stored, With([]byte("same"), clk(1, 1)))
	if !errors.Is(err, ErrObsoleteVersion) {
		t.Fatalf("Add equal clock: err = %v, want ErrObsoleteVersion", err)
	}
}

func TestAddSupersedes(t *testing.T) {
	stored := []*Versioned{With([]byte("old"), clk(1))}
	out, err := Add(stored, With([]byte("new"), clk(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0].Value) != "new" {
		t.Fatalf("got %v, want single new version", out)
	}
}

func TestAddKeepsConcurrent(t *testing.T) {
	stored := []*Versioned{With([]byte("a"), clk(1))}
	out, err := Add(stored, With([]byte("b"), clk(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d versions, want 2 concurrent", len(out))
	}
}

func TestAddConcurrentThenDominating(t *testing.T) {
	var vs []*Versioned
	var err error
	vs, _ = Add(vs, With([]byte("a"), clk(1)))
	vs, _ = Add(vs, With([]byte("b"), clk(2)))
	dominating := With([]byte("merged"), clk(1, 2))
	vs, err = Add(vs, dominating)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || string(vs[0].Value) != "merged" {
		t.Fatalf("dominating write should collapse set, got %v", vs)
	}
}

func TestResolve(t *testing.T) {
	a := With([]byte("a"), clk(1))
	b := With([]byte("b"), clk(1, 1))
	c := With([]byte("c"), clk(2))
	got := Resolve([]*Versioned{a, b, c})
	if len(got) != 2 {
		t.Fatalf("Resolve kept %d versions, want 2 (b and c)", len(got))
	}
	for _, v := range got {
		if string(v.Value) == "a" {
			t.Fatal("dominated version 'a' survived Resolve")
		}
	}
}

func TestResolveDedupsEqual(t *testing.T) {
	a := With([]byte("a"), clk(1))
	a2 := With([]byte("a"), clk(1))
	got := Resolve([]*Versioned{a, a2})
	if len(got) != 1 {
		t.Fatalf("Resolve kept %d equal versions, want 1", len(got))
	}
}

func TestLatest(t *testing.T) {
	if _, ok := Latest(nil); ok {
		t.Fatal("Latest(nil) ok = true")
	}
	a := With([]byte("a"), clk(1))
	b := With([]byte("b"), clk(1, 1))
	v, ok := Latest([]*Versioned{a, b})
	if !ok || string(v.Value) != "b" {
		t.Fatalf("Latest = %v, want b", v)
	}
	// concurrent: timestamp tiebreak
	c1 := With([]byte("c1"), vclock.New().Increment(1, 100))
	c2 := With([]byte("c2"), vclock.New().Increment(2, 200))
	v, _ = Latest([]*Versioned{c1, c2})
	if string(v.Value) != "c2" {
		t.Fatalf("Latest concurrent tiebreak = %s, want c2", v.Value)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	v := With([]byte("hello world"), clk(1, 2, 3))
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Versioned
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, v.Value) {
		t.Fatalf("value mismatch: %q vs %q", got.Value, v.Value)
	}
	if got.Clock.Compare(v.Clock) != vclock.Equal {
		t.Fatalf("clock mismatch: %v vs %v", got.Clock, v.Clock)
	}
}

func TestCodecEmptyValue(t *testing.T) {
	v := With(nil, clk())
	data, _ := v.MarshalBinary()
	var got Versioned
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got.Value) != 0 {
		t.Fatalf("want empty value, got %q", got.Value)
	}
}

func TestCodecCorrupt(t *testing.T) {
	var v Versioned
	if err := v.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := v.UnmarshalBinary([]byte{0, 0, 0, 99, 1, 2}); err == nil {
		t.Fatal("truncated clock accepted")
	}
}

// Property: repeatedly Adding random versions maintains the anti-chain
// invariant — no pair in the stored set is comparable.
func TestPropAddMaintainsAntichain(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var vs []*Versioned
		for i := 0; i < 20; i++ {
			c := vclock.New()
			for j := 0; j < r.Intn(4); j++ {
				c.Increment(int32(r.Intn(4)), 0)
			}
			vs2, err := Add(vs, With([]byte{byte(i)}, c))
			if err == nil {
				vs = vs2
			}
		}
		for i, a := range vs {
			for j, b := range vs {
				if i != j && a.Clock.Compare(b.Clock) != vclock.Concurrent {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
