package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if ID(ctx) != "" {
		t.Fatal("empty context should carry no ID")
	}
	ctx2, id := Ensure(ctx)
	if id == "" || ID(ctx2) != id {
		t.Fatalf("Ensure: id=%q ctx id=%q", id, ID(ctx2))
	}
	ctx3, id2 := Ensure(ctx2)
	if id2 != id || ctx3 != ctx2 {
		t.Fatal("Ensure on a carrying context must be a no-op")
	}
}

func TestAnnotate(t *testing.T) {
	base := errors.New("boom")
	err := Annotate("abcd1234abcd1234", base)
	if !errors.Is(err, base) {
		t.Fatal("annotated error must unwrap to the base error")
	}
	if !strings.Contains(err.Error(), "[trace=abcd1234abcd1234]") {
		t.Fatalf("annotated error %q missing trace prefix", err)
	}
	if Annotate("", base) != base || Annotate("x", nil) != nil {
		t.Fatal("empty id / nil error must pass through")
	}
}

func TestLogging(t *testing.T) {
	var buf bytes.Buffer
	Enable(&buf)
	defer Enable(nil)
	if !Enabled() {
		t.Fatal("Enabled() = false after Enable")
	}
	Logf("deadbeef00000000", "put key=%s", "k1")
	if got := buf.String(); !strings.Contains(got, "[deadbeef00000000] put key=k1") {
		t.Fatalf("log line %q missing trace tag", got)
	}
	Enable(nil)
	n := buf.Len()
	Logf("deadbeef00000000", "dropped")
	if buf.Len() != n {
		t.Fatal("Logf wrote while disabled")
	}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(fmt.Sprintf("id-%d", i))
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %v, want 4 entries", recent)
	}
	if recent[0] != "id-2" || recent[3] != "id-5" {
		t.Fatalf("recent order wrong: %v", recent)
	}
	if r.Contains("id-1") || !r.Contains("id-5") {
		t.Fatal("Contains disagrees with eviction")
	}
	r.Add("")
	if r.Contains("") {
		t.Fatal("empty IDs must be ignored")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(fmt.Sprintf("%d-%d", i, j))
				_ = r.Recent()
			}
		}(i)
	}
	wg.Wait()
}
