// Package trace provides the lightweight request/trace IDs that let an
// operator follow one logical operation across process and system
// boundaries: a write entering an Espresso front end, the Databus event it
// commits, and the Voldemort replicas a quorum put fans out to all carry the
// same 16-hex-character ID. IDs are generated at the client edge (Voldemort
// SocketStore, Espresso HTTPClient, or any HTTP caller setting the Header),
// propagated through HTTP headers and the Voldemort socket protocol's
// trailing trace field, surfaced in error strings as a "[trace=…]" prefix,
// and optionally logged per request (see Enable / OPERATIONS.md).
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
)

// Header is the HTTP header carrying the trace ID across the Espresso and
// Databus HTTP surfaces.
const Header = "X-Datainfra-Trace"

// NewID returns a fresh 16-hex-char trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a counter so the
		// data plane never stalls on the observability plane.
		return fmt.Sprintf("fallback%08x", fallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var fallback atomic.Uint64

type ctxKey struct{}

// With returns ctx carrying the trace ID.
func With(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// ID returns the trace ID carried by ctx, or "".
func ID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// Ensure returns ctx carrying a trace ID, generating one when absent.
func Ensure(ctx context.Context) (context.Context, string) {
	if id := ID(ctx); id != "" {
		return ctx, id
	}
	id := NewID()
	return With(ctx, id), id
}

// Annotate prefixes err with the trace ID so the ID survives error
// propagation across layers that drop context values. A nil error or empty
// ID passes through unchanged.
func Annotate(id string, err error) error {
	if err == nil || id == "" {
		return err
	}
	return fmt.Errorf("[trace=%s] %w", id, err)
}

// Optional per-request logging -----------------------------------------------

var (
	logMu  sync.RWMutex
	logger *log.Logger
)

// Enable turns on per-request trace logging to w (operators pass os.Stderr
// or a file; cmd/* servers enable it when DATAINFRA_TRACE=1). Pass nil to
// disable again.
func Enable(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	if w == nil {
		logger = nil
		return
	}
	logger = log.New(w, "trace ", log.LstdFlags|log.Lmicroseconds)
}

// Enabled reports whether per-request logging is on.
func Enabled() bool {
	logMu.RLock()
	defer logMu.RUnlock()
	return logger != nil
}

// Logf emits one per-request log line tagged with the trace ID when logging
// is enabled; otherwise it is a no-op costing one RLock.
func Logf(id, format string, args ...any) {
	logMu.RLock()
	l := logger
	logMu.RUnlock()
	if l == nil || id == "" {
		return
	}
	l.Printf("[%s] %s", id, fmt.Sprintf(format, args...))
}

// Ring is a small fixed-size ring of recently seen trace IDs that servers
// expose for tests and debugging ("did my request reach this node?").
type Ring struct {
	mu   sync.Mutex
	ids  []string
	next int
	full bool
}

// NewRing returns a ring holding up to n IDs (n <= 0 means 16).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 16
	}
	return &Ring{ids: make([]string, n)}
}

// Add records an ID (empty IDs are ignored).
func (r *Ring) Add(id string) {
	if id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ids[r.next] = id
	r.next = (r.next + 1) % len(r.ids)
	if r.next == 0 {
		r.full = true
	}
}

// Recent returns the recorded IDs, oldest first.
func (r *Ring) Recent() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	if r.full {
		out = append(out, r.ids[r.next:]...)
	}
	out = append(out, r.ids[:r.next]...)
	return out
}

// Contains reports whether id is among the recorded IDs.
func (r *Ring) Contains(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.ids {
		if v == id {
			return true
		}
	}
	return false
}
