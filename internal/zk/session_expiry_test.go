package zk

// Session-expiry edge cases. The liveness signal Helix and the Kafka consumer
// groups build on is "ephemeral disappears, watch fires" — these tests pin
// the ordering half of that contract: by the time any watch event caused by
// an expiry is delivered, the ephemeral (indeed, every ephemeral the session
// owned) is already removed, so a watcher that re-reads the tree on wake-up
// always sees the post-expiry state, never a half-dead session.

import (
	"errors"
	"testing"
	"time"
)

func recvEvent(t *testing.T, ch <-chan Event, what string) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return Event{}
	}
}

func TestExpiryRemovesNodeBeforeWatchDelivery(t *testing.T) {
	s := NewServer()
	observer := s.NewSession()
	defer observer.Close()
	owner := s.NewSession()

	if _, err := observer.Create("/live", nil, FlagPersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Create("/live/e", []byte("owner"), FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	dataCh, err := observer.WatchData("/live/e")
	if err != nil {
		t.Fatal(err)
	}
	kids, childCh, err := observer.WatchChildren("/live")
	if err != nil || len(kids) != 1 {
		t.Fatalf("WatchChildren = (%v, %v)", kids, err)
	}

	owner.Close()

	ev := recvEvent(t, dataCh, "data watch on the ephemeral")
	if ev.Type != EventDeleted || ev.Path != "/live/e" {
		t.Fatalf("data event = %+v, want deleted /live/e", ev)
	}
	// Removal precedes delivery: re-reading on wake-up must miss the node.
	if ok, _ := observer.Exists("/live/e"); ok {
		t.Fatal("ephemeral still visible after its delete watch fired")
	}
	ev = recvEvent(t, childCh, "child watch on the parent")
	if ev.Type != EventChildrenChanged || ev.Path != "/live" {
		t.Fatalf("child event = %+v, want childrenChanged /live", ev)
	}
	if kids, _ := observer.Children("/live"); len(kids) != 0 {
		t.Fatalf("children after expiry = %v", kids)
	}
}

func TestExpiryRemovalAtomicAcrossDepths(t *testing.T) {
	// Close removes every ephemeral (deepest first) under a single server
	// lock hold, so no observer can catch the session half-expired: when the
	// watch for ANY of its nodes is delivered, ALL of them are gone —
	// including ones deleted later in Close's own ordering.
	s := NewServer()
	observer := s.NewSession()
	defer observer.Close()
	if err := observer.CreateAll("/a/b/c", nil); err != nil {
		t.Fatal(err)
	}

	owner := s.NewSession()
	if _, err := owner.Create("/a/b/c/deep", nil, FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Create("/a/shallow", nil, FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	deepCh, err := observer.WatchData("/a/b/c/deep")
	if err != nil {
		t.Fatal(err)
	}
	shallowCh, err := observer.WatchData("/a/shallow")
	if err != nil {
		t.Fatal(err)
	}

	owner.Close()

	// The deep node is deleted first; at the moment its event is delivered
	// the shallow one (deleted after it) must already be gone too.
	ev := recvEvent(t, deepCh, "deep delete watch")
	if ev.Type != EventDeleted {
		t.Fatalf("deep event = %+v", ev)
	}
	if ok, _ := observer.Exists("/a/shallow"); ok {
		t.Fatal("shallow ephemeral observable after the deep watch fired")
	}
	ev = recvEvent(t, shallowCh, "shallow delete watch")
	if ev.Type != EventDeleted || ev.Path != "/a/shallow" {
		t.Fatalf("shallow event = %+v", ev)
	}
	// Persistent scaffolding survives the expiry untouched.
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if ok, _ := observer.Exists(p); !ok {
			t.Fatalf("persistent node %s removed by expiry", p)
		}
	}
}

func TestLeaderElectionHandoffOnExpiry(t *testing.T) {
	// The classic herd-avoiding election: sequential ephemerals, each
	// candidate watches its predecessor. When the leader's session expires
	// the successor's watch fires and, re-listing, it finds itself lowest.
	s := NewServer()
	setup := s.NewSession()
	defer setup.Close()
	if _, err := setup.Create("/election", nil, FlagPersistent); err != nil {
		t.Fatal(err)
	}

	leader := s.NewSession()
	follower := s.NewSession()
	defer follower.Close()
	lp, err := leader.Create("/election/n-", nil, FlagEphemeral|FlagSequential)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := follower.Create("/election/n-", nil, FlagEphemeral|FlagSequential)
	if err != nil {
		t.Fatal(err)
	}
	if lp >= fp {
		t.Fatalf("sequential order broken: leader %q, follower %q", lp, fp)
	}
	watch, err := follower.WatchData(lp)
	if err != nil {
		t.Fatal(err)
	}

	leader.Close()

	ev := recvEvent(t, watch, "predecessor watch")
	if ev.Type != EventDeleted || ev.Path != lp {
		t.Fatalf("event = %+v, want deleted %s", ev, lp)
	}
	// On wake-up the follower is already the lowest candidate: leadership is
	// decided by the re-read, not by a racing second event.
	kids, err := follower.Children("/election")
	if err != nil || len(kids) != 1 {
		t.Fatalf("candidates after expiry = (%v, %v)", kids, err)
	}
	if "/election/"+kids[0] != fp {
		t.Fatalf("new leader = %q, want %q", kids[0], fp)
	}
}

func TestReregisterEphemeralAfterExpiry(t *testing.T) {
	// Instance re-registration: the same path is claimable again the moment
	// the old owner expires, and the old session's (idempotent) Close must
	// not reap the new owner's node.
	s := NewServer()
	setup := s.NewSession()
	defer setup.Close()
	if _, err := setup.Create("/instances", nil, FlagPersistent); err != nil {
		t.Fatal(err)
	}

	first := s.NewSession()
	if _, err := first.Create("/instances/node-0", []byte("v1"), FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	second := s.NewSession()
	defer second.Close()
	if _, err := second.Create("/instances/node-0", []byte("v2"), FlagEphemeral); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("claim while owner alive err = %v, want ErrNodeExists", err)
	}

	first.Close()
	if _, err := second.Create("/instances/node-0", []byte("v2"), FlagEphemeral); err != nil {
		t.Fatalf("re-register after expiry: %v", err)
	}

	// A second Close of the dead session is a no-op — it must not delete the
	// re-registered node it once owned the path of.
	first.Close()
	data, stat, err := second.Get("/instances/node-0")
	if err != nil || string(data) != "v2" || !stat.Ephemeral {
		t.Fatalf("re-registered node = (%q, %+v, %v)", data, stat, err)
	}
}
