// Package zk is an in-process coordination service with Zookeeper's
// semantics, the substrate Kafka's consumer groups (§V.C) and Helix (§IV.B)
// are built on: a hierarchical namespace of znodes supporting persistent,
// ephemeral and sequential nodes, one-shot watches on data and children, and
// compare-and-set writes.
//
// Ephemeral nodes are tied to a Session: closing the session removes them and
// fires the corresponding watches, which is exactly the liveness signal the
// paper's consumers and cluster managers rely on.
package zk

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors.
var (
	ErrNoNode         = errors.New("zk: node does not exist")
	ErrNodeExists     = errors.New("zk: node already exists")
	ErrNotEmpty       = errors.New("zk: node has children")
	ErrBadVersion     = errors.New("zk: version conflict")
	ErrSessionClosed  = errors.New("zk: session closed")
	ErrNoParent       = errors.New("zk: parent node does not exist")
	ErrEphemeralChild = errors.New("zk: ephemeral nodes cannot have children")
)

// EventType identifies what happened to a watched node.
type EventType int

// Watch event types.
const (
	EventCreated EventType = iota
	EventDeleted
	EventDataChanged
	EventChildrenChanged
	EventSessionExpired
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "dataChanged"
	case EventChildrenChanged:
		return "childrenChanged"
	case EventSessionExpired:
		return "sessionExpired"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is delivered on watch channels.
type Event struct {
	Type EventType
	Path string
}

// CreateFlag alters Create behaviour.
type CreateFlag int

// Creation flags (combinable).
const (
	FlagPersistent CreateFlag = 0
	FlagEphemeral  CreateFlag = 1
	FlagSequential CreateFlag = 2
)

// Stat carries node metadata.
type Stat struct {
	Version     int
	Ephemeral   bool
	NumChildren int
}

type znode struct {
	data      []byte
	version   int
	ephemeral bool
	owner     *Session // for ephemerals
	children  map[string]*znode
	seq       int // sequential-child counter

	dataWatches  []chan Event
	childWatches []chan Event
}

// Server is the coordination service. A zero-value Server is not ready; use
// NewServer.
type Server struct {
	mu   sync.Mutex
	root *znode
}

// NewServer returns an empty namespace containing only "/".
func NewServer() *Server {
	return &Server{root: &znode{children: map[string]*znode{}}}
}

// Session is one client's connection; ephemerals die with it.
type Session struct {
	srv    *Server
	mu     sync.Mutex
	closed bool
	paths  map[string]bool // ephemeral paths owned
}

// NewSession opens a session.
func (s *Server) NewSession() *Session {
	return &Session{srv: s, paths: map[string]bool{}}
}

func splitPath(p string) ([]string, error) {
	if !strings.HasPrefix(p, "/") {
		return nil, fmt.Errorf("zk: path %q must be absolute", p)
	}
	clean := path.Clean(p)
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(clean, "/"), "/"), nil
}

// lookup walks to the node at parts. Caller holds mu.
func (s *Server) lookup(parts []string) (*znode, error) {
	n := s.root
	for _, part := range parts {
		child, ok := n.children[part]
		if !ok {
			return nil, ErrNoNode
		}
		n = child
	}
	return n, nil
}

func notify(watches *[]chan Event, ev Event) {
	for _, ch := range *watches {
		select {
		case ch <- ev:
		default: // watcher not draining; drop rather than block the server
		}
	}
	*watches = nil // one-shot, like Zookeeper
}

// Create makes a node at p with data. With FlagSequential a monotonically
// increasing zero-padded suffix is appended; the actual path is returned.
func (sess *Session) Create(p string, data []byte, flags CreateFlag) (string, error) {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return "", ErrSessionClosed
	}
	sess.mu.Unlock()

	parts, err := splitPath(p)
	if err != nil {
		return "", err
	}
	if len(parts) == 0 {
		return "", ErrNodeExists
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.lookup(parts[:len(parts)-1])
	if err != nil {
		return "", fmt.Errorf("%w: %s", ErrNoParent, path.Dir(p))
	}
	if parent.ephemeral {
		return "", ErrEphemeralChild
	}
	name := parts[len(parts)-1]
	if flags&FlagSequential != 0 {
		name = fmt.Sprintf("%s%010d", name, parent.seq)
		parent.seq++
	}
	if _, exists := parent.children[name]; exists {
		return "", fmt.Errorf("%w: %s", ErrNodeExists, p)
	}
	node := &znode{
		data:      append([]byte(nil), data...),
		ephemeral: flags&FlagEphemeral != 0,
		children:  map[string]*znode{},
	}
	if node.ephemeral {
		node.owner = sess
	}
	parent.children[name] = node
	full := "/" + strings.Join(append(append([]string{}, parts[:len(parts)-1]...), name), "/")
	if node.ephemeral {
		sess.mu.Lock()
		sess.paths[full] = true
		sess.mu.Unlock()
	}
	notify(&parent.childWatches, Event{Type: EventChildrenChanged, Path: path.Dir(full)})
	return full, nil
}

// Get returns the data and stat of the node at p.
func (sess *Session) Get(p string) ([]byte, Stat, error) {
	s := sess.srv
	parts, err := splitPath(p)
	if err != nil {
		return nil, Stat{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(parts)
	if err != nil {
		return nil, Stat{}, fmt.Errorf("%w: %s", err, p)
	}
	return append([]byte(nil), n.data...), Stat{Version: n.version, Ephemeral: n.ephemeral, NumChildren: len(n.children)}, nil
}

// Exists reports whether p exists.
func (sess *Session) Exists(p string) (bool, error) {
	_, _, err := sess.Get(p)
	if errors.Is(err, ErrNoNode) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Set writes data to p. version must match the node's current version, or be
// -1 to skip the check (Zookeeper's CAS rule).
func (sess *Session) Set(p string, data []byte, version int) (Stat, error) {
	s := sess.srv
	parts, err := splitPath(p)
	if err != nil {
		return Stat{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(parts)
	if err != nil {
		return Stat{}, fmt.Errorf("%w: %s", err, p)
	}
	if version != -1 && version != n.version {
		return Stat{}, fmt.Errorf("%w: have %d, got %d", ErrBadVersion, n.version, version)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	notify(&n.dataWatches, Event{Type: EventDataChanged, Path: p})
	return Stat{Version: n.version, Ephemeral: n.ephemeral, NumChildren: len(n.children)}, nil
}

// Delete removes the node at p; it must have no children. version follows
// the same CAS rule as Set.
func (sess *Session) Delete(p string, version int) error {
	s := sess.srv
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("zk: cannot delete root")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(parts, version, p)
}

func (s *Server) deleteLocked(parts []string, version int, display string) error {
	parent, err := s.lookup(parts[:len(parts)-1])
	if err != nil {
		return fmt.Errorf("%w: %s", err, display)
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, display)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, display)
	}
	if version != -1 && version != n.version {
		return fmt.Errorf("%w: have %d, got %d", ErrBadVersion, n.version, version)
	}
	delete(parent.children, name)
	if n.owner != nil {
		n.owner.mu.Lock()
		delete(n.owner.paths, display)
		n.owner.mu.Unlock()
	}
	notify(&n.dataWatches, Event{Type: EventDeleted, Path: display})
	notify(&parent.childWatches, Event{Type: EventChildrenChanged, Path: path.Dir(display)})
	return nil
}

// Children returns the sorted child names of p.
func (sess *Session) Children(p string) ([]string, error) {
	s := sess.srv
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, p)
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// WatchData registers a one-shot watch on p's data (fires on change or
// delete). The returned channel has capacity 1.
func (sess *Session) WatchData(p string) (<-chan Event, error) {
	s := sess.srv
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, p)
	}
	ch := make(chan Event, 1)
	n.dataWatches = append(n.dataWatches, ch)
	return ch, nil
}

// WatchChildren registers a one-shot watch on p's child list and returns the
// current children alongside it (the get-and-watch idiom).
func (sess *Session) WatchChildren(p string) ([]string, <-chan Event, error) {
	s := sess.srv
	parts, err := splitPath(p)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(parts)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %s", err, p)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	ch := make(chan Event, 1)
	n.childWatches = append(n.childWatches, ch)
	return names, ch, nil
}

// CreateAll creates every missing persistent node along p (mkdir -p).
func (sess *Session) CreateAll(p string, data []byte) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	for i := 1; i <= len(parts); i++ {
		sub := "/" + strings.Join(parts[:i], "/")
		var d []byte
		if i == len(parts) {
			d = data
		}
		if _, err := sess.Create(sub, d, FlagPersistent); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return nil
}

// Close expires the session: all its ephemeral nodes are removed (firing
// watches) and further operations fail.
func (sess *Session) Close() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	paths := make([]string, 0, len(sess.paths))
	for p := range sess.paths {
		paths = append(paths, p)
	}
	sess.mu.Unlock()

	// Delete deepest-first so parents empty out.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range paths {
		parts, err := splitPath(p)
		if err != nil || len(parts) == 0 {
			continue
		}
		_ = s.deleteLocked(parts, -1, p)
	}
}
