package zk

import (
	"errors"
	"testing"
)

func TestGetMissingNode(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	if _, _, err := sess.Get("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Get missing err = %v", err)
	}
	if err := sess.Delete("/nope", -1); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Delete missing err = %v", err)
	}
	if _, err := sess.Children("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Children missing err = %v", err)
	}
	if _, err := sess.WatchData("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("WatchData missing err = %v", err)
	}
	if _, _, err := sess.WatchChildren("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("WatchChildren missing err = %v", err)
	}
}

func TestSetMissingNode(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	if _, err := sess.Set("/nope", []byte("x"), -1); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Set missing err = %v", err)
	}
}

func TestStatReflectsChildren(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.CreateAll("/p/a", nil)
	sess.Create("/p/b", nil, FlagPersistent)
	_, stat, err := sess.Get("/p")
	if err != nil {
		t.Fatal(err)
	}
	if stat.NumChildren != 2 {
		t.Fatalf("NumChildren = %d", stat.NumChildren)
	}
	if stat.Ephemeral {
		t.Fatal("persistent node marked ephemeral")
	}
	eph := s.NewSession()
	defer eph.Close()
	eph.Create("/p/e", nil, FlagEphemeral)
	_, estat, _ := eph.Get("/p/e")
	if !estat.Ephemeral {
		t.Fatal("ephemeral node not marked")
	}
}

func TestDeleteRootRejected(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	if err := sess.Delete("/", -1); err == nil {
		t.Fatal("root delete accepted")
	}
}

func TestSequentialCounterPerParent(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.Create("/q1", nil, FlagPersistent)
	sess.Create("/q2", nil, FlagPersistent)
	a, _ := sess.Create("/q1/n-", nil, FlagSequential)
	b, _ := sess.Create("/q2/n-", nil, FlagSequential)
	// counters are per parent: both first children get suffix 0
	if a[len(a)-1] != b[len(b)-1] {
		t.Fatalf("per-parent counters diverged: %q vs %q", a, b)
	}
}

func TestDoubleCloseSessionSafe(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	sess.Create("/x", nil, FlagEphemeral)
	sess.Close()
	sess.Close() // must not panic
}
