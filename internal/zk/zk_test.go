package zk

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()

	p, err := sess.Create("/a", []byte("1"), FlagPersistent)
	if err != nil || p != "/a" {
		t.Fatalf("Create = (%q, %v)", p, err)
	}
	data, stat, err := sess.Get("/a")
	if err != nil || string(data) != "1" || stat.Version != 0 {
		t.Fatalf("Get = (%q, %+v, %v)", data, stat, err)
	}
	if _, err := sess.Set("/a", []byte("2"), 0); err != nil {
		t.Fatal(err)
	}
	data, stat, _ = sess.Get("/a")
	if string(data) != "2" || stat.Version != 1 {
		t.Fatalf("after Set: (%q, %+v)", data, stat)
	}
	if err := sess.Delete("/a", 1); err != nil {
		t.Fatal(err)
	}
	if ok, _ := sess.Exists("/a"); ok {
		t.Fatal("node survived delete")
	}
}

func TestCreateErrors(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	if _, err := sess.Create("/a/b", nil, FlagPersistent); !errors.Is(err, ErrNoParent) {
		t.Fatalf("missing parent err = %v", err)
	}
	if _, err := sess.Create("relative", nil, FlagPersistent); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := sess.Create("/a", nil, FlagPersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Create("/a", nil, FlagPersistent); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
}

func TestEphemeralUnderEphemeralRejected(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	if _, err := sess.Create("/e", nil, FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Create("/e/child", nil, FlagPersistent); !errors.Is(err, ErrEphemeralChild) {
		t.Fatalf("child of ephemeral err = %v", err)
	}
}

func TestCASVersioning(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.Create("/a", []byte("x"), FlagPersistent)
	if _, err := sess.Set("/a", []byte("y"), 5); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale version Set err = %v", err)
	}
	if _, err := sess.Set("/a", []byte("y"), -1); err != nil {
		t.Fatalf("-1 version Set err = %v", err)
	}
	if err := sess.Delete("/a", 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale version Delete err = %v", err)
	}
}

func TestDeleteNonEmpty(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.CreateAll("/a/b", nil)
	if err := sess.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty err = %v", err)
	}
}

func TestSequentialNodes(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.Create("/queue", nil, FlagPersistent)
	p1, _ := sess.Create("/queue/item-", nil, FlagSequential)
	p2, _ := sess.Create("/queue/item-", nil, FlagSequential)
	if p1 >= p2 {
		t.Fatalf("sequential names not increasing: %q >= %q", p1, p2)
	}
	kids, _ := sess.Children("/queue")
	if len(kids) != 2 {
		t.Fatalf("children = %v", kids)
	}
}

func TestEphemeralDiesWithSession(t *testing.T) {
	s := NewServer()
	owner := s.NewSession()
	other := s.NewSession()
	defer other.Close()
	owner.Create("/members", nil, FlagPersistent)
	owner.Create("/members/me", []byte("hi"), FlagEphemeral)
	if ok, _ := other.Exists("/members/me"); !ok {
		t.Fatal("ephemeral invisible to other session")
	}
	owner.Close()
	if ok, _ := other.Exists("/members/me"); ok {
		t.Fatal("ephemeral survived session close")
	}
	// session ops now fail
	if _, err := owner.Create("/x", nil, FlagPersistent); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("op on closed session err = %v", err)
	}
}

func TestDataWatchFires(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.Create("/w", []byte("0"), FlagPersistent)
	ch, err := sess.WatchData("/w")
	if err != nil {
		t.Fatal(err)
	}
	sess.Set("/w", []byte("1"), -1)
	select {
	case ev := <-ch:
		if ev.Type != EventDataChanged || ev.Path != "/w" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("data watch did not fire")
	}
	// one-shot: another set does not fire again
	sess.Set("/w", []byte("2"), -1)
	select {
	case ev := <-ch:
		t.Fatalf("one-shot watch fired twice: %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestDeleteFiresDataWatch(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	sess.Create("/w", nil, FlagPersistent)
	ch, _ := sess.WatchData("/w")
	sess.Delete("/w", -1)
	select {
	case ev := <-ch:
		if ev.Type != EventDeleted {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("delete watch did not fire")
	}
}

func TestChildWatchFiresOnCreateAndSessionDeath(t *testing.T) {
	s := NewServer()
	watcher := s.NewSession()
	member := s.NewSession()
	defer watcher.Close()
	watcher.Create("/group", nil, FlagPersistent)

	kids, ch, err := watcher.WatchChildren("/group")
	if err != nil || len(kids) != 0 {
		t.Fatalf("WatchChildren = (%v, %v)", kids, err)
	}
	member.Create("/group/m1", nil, FlagEphemeral)
	select {
	case ev := <-ch:
		if ev.Type != EventChildrenChanged {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("child watch did not fire on create")
	}
	// re-arm and watch the member die with its session
	kids, ch, _ = watcher.WatchChildren("/group")
	if len(kids) != 1 {
		t.Fatalf("children = %v", kids)
	}
	member.Close()
	select {
	case ev := <-ch:
		if ev.Type != EventChildrenChanged {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("child watch did not fire on session death")
	}
	kids, _ = watcher.Children("/group")
	if len(kids) != 0 {
		t.Fatalf("children after death = %v", kids)
	}
}

func TestCreateAllIdempotent(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	if err := sess.CreateAll("/a/b/c", []byte("leaf")); err != nil {
		t.Fatal(err)
	}
	if err := sess.CreateAll("/a/b/c", nil); err != nil {
		t.Fatal(err)
	}
	data, _, err := sess.Get("/a/b/c")
	if err != nil || string(data) != "leaf" {
		t.Fatalf("leaf = (%q, %v)", data, err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	s := NewServer()
	root := s.NewSession()
	defer root.Close()
	root.Create("/c", nil, FlagPersistent)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("/c/n%d-%d", g, i)
				if _, err := sess.Create(p, nil, FlagEphemeral); err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				if _, _, err := sess.Get(p); err != nil {
					t.Errorf("get %s: %v", p, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// all ephemeral sessions closed: tree empty again
	kids, _ := root.Children("/c")
	if len(kids) != 0 {
		t.Fatalf("%d ephemerals leaked", len(kids))
	}
}
