package voldemort

import (
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/failure"
	"datainfra/internal/ring"
)

// ClientFactory builds client-side-routed stores: per-node socket stores
// assembled under a RoutedStore, with a shared success-ratio failure detector
// whose async probe pings the nodes — the standard client stack of §II.B.
type ClientFactory struct {
	clus     *cluster.Cluster
	detector *failure.SuccessRatio
	timeout  time.Duration
	sockets  map[int]map[string]*SocketStore // node -> store -> socket
	slops    []*SlopPusher
}

// NewClientFactory builds a factory over the cluster topology.
func NewClientFactory(clus *cluster.Cluster, timeout time.Duration) *ClientFactory {
	f := &ClientFactory{
		clus:    clus,
		timeout: timeout,
		sockets: make(map[int]map[string]*SocketStore),
	}
	prober := failure.ProberFunc(func(node int) error {
		n := clus.NodeByID(node)
		if n == nil {
			return ErrNodeDown
		}
		s := DialStore("", n.Addr(), timeout)
		defer s.Close()
		return s.Ping()
	})
	f.detector = failure.NewSuccessRatio(failure.SuccessRatioConfig{}, prober)
	return f
}

// Detector exposes the shared failure detector.
func (f *ClientFactory) Detector() *failure.SuccessRatio { return f.detector }

func (f *ClientFactory) socket(node int, store string) (*SocketStore, bool) {
	byStore, ok := f.sockets[node]
	if !ok {
		byStore = make(map[string]*SocketStore)
		f.sockets[node] = byStore
	}
	s, ok := byStore[store]
	if !ok {
		n := f.clus.NodeByID(node)
		if n == nil {
			return nil, false
		}
		s = DialStore(store, n.Addr(), f.timeout)
		byStore[store] = s
	}
	return s, true
}

// RoutedStore assembles the full quorum stack for def: socket stores for
// every node, consistent (or zoned) routing, the shared failure detector and
// a slop pusher for hinted handoff.
func (f *ClientFactory) RoutedStore(def *cluster.StoreDef, clientZone int) (*RoutedStore, error) {
	def = def.WithDefaults()
	var strategy ring.Strategy
	var err error
	if def.ZoneCountReads > 0 || def.ZoneCountWrites > 0 {
		strategy, err = ring.NewZoned(f.clus, def.Replication, max(def.ZoneCountReads, def.ZoneCountWrites), clientZone)
	} else {
		strategy, err = ring.NewConsistent(f.clus, def.Replication)
	}
	if err != nil {
		return nil, err
	}
	stores := make(map[int]Store, len(f.clus.Nodes))
	for _, n := range f.clus.Nodes {
		s, ok := f.socket(n.ID, def.Name)
		if !ok {
			continue
		}
		stores[n.ID] = s
	}
	var slop *SlopPusher
	if def.HintedHandoff {
		slop = NewSlopPusher(func(node int, store string) (Store, bool) {
			s, ok := f.socket(node, store)
			return s, ok
		}, f.detector, 0)
		slop.Start()
		f.slops = append(f.slops, slop)
	}
	return NewRouted(RoutedConfig{
		Def:      def,
		Cluster:  f.clus,
		Strategy: strategy,
		Detector: f.detector,
		Stores:   stores,
		Slop:     slop,
		Timeout:  f.timeout,
	})
}

// Client returns a Figure II.2 client bound to a routed store for def.
func (f *ClientFactory) Client(def *cluster.StoreDef, clientID int) (*Client, error) {
	rs, err := f.RoutedStore(def, 0)
	if err != nil {
		return nil, err
	}
	return NewClient(rs, nil, clientID), nil
}

// Close shuts the detector, slop pushers and all pooled sockets.
func (f *ClientFactory) Close() {
	f.detector.Close()
	for _, s := range f.slops {
		s.Close()
	}
	for _, byStore := range f.sockets {
		for _, s := range byStore {
			s.Close()
		}
	}
}
