package voldemort

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/versioned"
)

func TestGetAllEngineStore(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	c := NewClient(rig.routed, nil, 1)
	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	keys := [][]byte{[]byte("k1"), []byte("k5"), []byte("k19"), []byte("missing")}
	got, err := c.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("GetAll returned %d entries", len(got))
	}
	if string(got["k5"]) != "v5" {
		t.Fatalf("k5 = %q", got["k5"])
	}
	if _, present := got["missing"]; present {
		t.Fatal("missing key present in result")
	}
}

func TestGetAllOverSocket(t *testing.T) {
	def := (&cluster.StoreDef{Name: "ga", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(t, 1, 4, def)
	ss := DialStore("ga", clus.NodeByID(0).Addr(), time.Second)
	defer ss.Close()
	c := NewClient(ss, nil, 1)
	for i := 0; i < 10; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var keys [][]byte
	for i := 0; i < 10; i += 2 {
		keys = append(keys, []byte(fmt.Sprintf("k%d", i)))
	}
	got, err := c.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("socket GetAll returned %d entries", len(got))
	}
	for i := 0; i < 10; i += 2 {
		if string(got[fmt.Sprintf("k%d", i)]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q", i, got[fmt.Sprintf("k%d", i)])
		}
	}
	// empty key list
	got, err = c.GetAll(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty GetAll = (%d, %v)", len(got), err)
	}
}

func TestGetAllRoutedWithFailures(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 2, false)
	c := NewClient(rig.routed, nil, 1)
	var keys [][]byte
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		keys = append(keys, k)
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rig.flaky[0].SetFailing(true) // R=1 of N=3 still satisfiable
	got, err := c.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("GetAll with node down returned %d/30", len(got))
	}
}

// gatedGetStore blocks every Get until released, so in-flight GetAll work
// piles up and the concurrency bound becomes observable.
type gatedGetStore struct {
	Store
	release chan struct{}
}

func (g *gatedGetStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	<-g.release
	return g.Store.Get(key, tr)
}

// TestRoutedGetAllBoundsGoroutines proves the routed GetAll holds its 16-way
// semaphore BEFORE spawning: a large key batch must not materialize one
// goroutine per key (all parked on the semaphore), only the bounded window.
func TestRoutedGetAllBoundsGoroutines(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	release := make(chan struct{})
	for id, st := range rig.routed.stores {
		rig.routed.stores[id] = &gatedGetStore{Store: st, release: release}
	}
	const nkeys = 400
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%d", i))
	}
	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := rig.routed.GetAll(keys)
		done <- err
	}()
	// Let the batch saturate the semaphore while every Get is gated.
	deadline := time.Now().Add(2 * time.Second)
	var during int
	for time.Now().Before(deadline) {
		during = runtime.NumGoroutine()
		if during > before+16 {
			break // window is full; growth has peaked
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	during = runtime.NumGoroutine()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Each of the ≤16 admitted keys may fan out replica goroutines inside
	// RoutedStore.Get; 400 unbounded spawns would show as ~400+.
	if growth := during - before; growth > 120 {
		t.Fatalf("GetAll grew goroutines by %d for %d keys; want bounded by the 16-way window", growth, nkeys)
	}
}
