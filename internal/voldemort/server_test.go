package voldemort

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/ring"
	"datainfra/internal/storage"
	"datainfra/internal/versioned"
)

// writeROVersion creates a version-v directory under dir holding a single
// entry k -> val, using the same file format the offline build emits.
func writeROVersion(dir string, v int, val string) error {
	return storage.WriteReadOnlyFiles(
		filepath.Join(dir, fmt.Sprintf("version-%d", v)),
		[]storage.KV{{Key: []byte("k"), Value: []byte(val)}})
}

// startCluster boots n socket servers with a shared topology and one store.
func startCluster(t testing.TB, n, partitions int, def *cluster.StoreDef) (*cluster.Cluster, []*Server) {
	t.Helper()
	clus := cluster.Uniform("sock", n, partitions, 0)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(ServerConfig{NodeID: i, Cluster: clus, DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// Record the actual bound port in the shared topology.
		var port int
		fmt.Sscanf(addr[len("127.0.0.1:"):], "%d", &port)
		clus.NodeByID(i).Port = port
		if def != nil {
			if err := srv.AddStore(def); err != nil {
				t.Fatal(err)
			}
		}
		servers[i] = srv
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return clus, servers
}

func TestSocketStoreRoundTrip(t *testing.T) {
	def := (&cluster.StoreDef{Name: "s", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(t, 1, 4, def)
	ss := DialStore("s", clus.NodeByID(0).Addr(), time.Second)
	defer ss.Close()

	if err := ss.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	v := versioned.New([]byte("hello"))
	v.Clock = v.Clock.Incremented(0, 1)
	if err := ss.Put([]byte("k"), v, nil); err != nil {
		t.Fatal(err)
	}
	vs, err := ss.Get([]byte("k"), nil)
	if err != nil || len(vs) != 1 || string(vs[0].Value) != "hello" {
		t.Fatalf("Get = (%v, %v)", vs, err)
	}
	// obsolete put travels the wire as the typed error
	stale := versioned.New([]byte("stale"))
	err = ss.Put([]byte("k"), stale, nil)
	if !errors.Is(err, versioned.ErrObsoleteVersion) {
		t.Fatalf("remote obsolete err = %v", err)
	}
	// delete
	deleted, err := ss.Delete([]byte("k"), vs[0].Clock)
	if err != nil || !deleted {
		t.Fatalf("Delete = (%v, %v)", deleted, err)
	}
	vs, _ = ss.Get([]byte("k"), nil)
	if len(vs) != 0 {
		t.Fatal("key survived remote delete")
	}
	// unknown store error
	bad := DialStore("nope", clus.NodeByID(0).Addr(), time.Second)
	defer bad.Close()
	_, err = bad.Get([]byte("k"), nil)
	if !errors.Is(err, ErrUnknownStore) {
		t.Fatalf("unknown store err = %v", err)
	}
}

func TestSocketTransforms(t *testing.T) {
	def := (&cluster.StoreDef{Name: "s", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(t, 1, 4, def)
	ss := DialStore("s", clus.NodeByID(0).Addr(), time.Second)
	defer ss.Close()

	v := versioned.New([]byte(`"first"`))
	v.Clock = v.Clock.Incremented(0, 1)
	if err := ss.Put([]byte("list"), v, &Transform{Name: "list.append"}); err != nil {
		t.Fatal(err)
	}
	v2 := versioned.New([]byte(`"second"`))
	v2.Clock = v2.Clock.Incremented(0, 2)
	if err := ss.Put([]byte("list"), v2, &Transform{Name: "list.append"}); err != nil {
		t.Fatal(err)
	}
	vs, err := ss.Get([]byte("list"), &Transform{Name: "list.slice", Arg: SliceArg(0, 1)})
	if err != nil || len(vs) != 1 {
		t.Fatalf("transformed get = (%v, %v)", vs, err)
	}
	if string(vs[0].Value) != `["first"]` {
		t.Fatalf("slice = %s", vs[0].Value)
	}
}

func TestClientFactoryEndToEnd(t *testing.T) {
	def := (&cluster.StoreDef{
		Name: "e2e", Replication: 2, RequiredReads: 1, RequiredWrites: 2,
		ReadRepair: true,
	}).WithDefaults()
	clus, _ := startCluster(t, 3, 12, def)
	f := NewClientFactory(clus, time.Second)
	defer f.Close()
	c, err := f.Client(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s = (%q, %v, %v)", k, v, ok, err)
		}
	}
}

func TestFactorySurvivesNodeFailure(t *testing.T) {
	def := (&cluster.StoreDef{
		Name: "ha", Replication: 2, RequiredReads: 1, RequiredWrites: 1,
		HintedHandoff: true,
	}).WithDefaults()
	clus, servers := startCluster(t, 3, 12, def)
	f := NewClientFactory(clus, 300*time.Millisecond)
	defer f.Close()
	c, err := f.Client(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("pre"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Kill one server; R=1/W=1 over N=2 must keep the cluster available.
	servers[1].Close()
	okCount := 0
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("after-%d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			continue
		}
		if _, ok, err := c.Get(k); err == nil && ok {
			okCount++
		}
	}
	if okCount < 25 {
		t.Fatalf("only %d/30 operations succeeded with one node down", okCount)
	}
}

func TestAdminAddDeleteListStores(t *testing.T) {
	clus, _ := startCluster(t, 1, 4, nil)
	adm := NewAdmin(clus.NodeByID(0).Addr(), time.Second)
	def := (&cluster.StoreDef{Name: "dyn", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	if err := adm.AddStore(def); err != nil {
		t.Fatal(err)
	}
	names, err := adm.ListStores()
	if err != nil || len(names) != 1 || names[0] != "dyn" {
		t.Fatalf("ListStores = (%v, %v)", names, err)
	}
	// duplicate add fails
	if err := adm.AddStore(def); err == nil {
		t.Fatal("duplicate AddStore accepted")
	}
	if err := adm.DeleteStore("dyn"); err != nil {
		t.Fatal(err)
	}
	names, _ = adm.ListStores()
	if len(names) != 0 {
		t.Fatalf("store survived delete: %v", names)
	}
	if err := adm.DeleteStore("dyn"); err == nil {
		t.Fatal("deleting missing store succeeded")
	}
}

func TestAdminClusterMetadata(t *testing.T) {
	clus, _ := startCluster(t, 2, 8, nil)
	adm := NewAdmin(clus.NodeByID(0).Addr(), time.Second)
	got, err := adm.GetCluster()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPartitions != 8 || len(got.Nodes) != 2 {
		t.Fatalf("GetCluster = %+v", got)
	}
	// flip a partition and push
	next := got.Clone()
	owner, _ := next.OwnerOf(0)
	if err := next.SetOwner(0, 1-owner.ID); err != nil {
		t.Fatal(err)
	}
	if err := adm.UpdateCluster(next); err != nil {
		t.Fatal(err)
	}
	got2, err := adm.GetCluster()
	if err != nil {
		t.Fatal(err)
	}
	newOwner, _ := got2.OwnerOf(0)
	if newOwner.ID != 1-owner.ID {
		t.Fatalf("metadata update not applied: partition 0 owned by %d", newOwner.ID)
	}
}

func TestRebalanceMovesPartitionWithoutDataLoss(t *testing.T) {
	def := (&cluster.StoreDef{Name: "rb", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, servers := startCluster(t, 2, 8, def)

	// Load data through a factory client.
	f := NewClientFactory(clus, time.Second)
	c, err := f.Client(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Move every partition owned by node 0 to node 1.
	admins := map[int]*Admin{
		0: NewAdmin(clus.NodeByID(0).Addr(), 5*time.Second),
		1: NewAdmin(clus.NodeByID(1).Addr(), 5*time.Second),
	}
	var plan []Move
	for _, p := range clus.NodeByID(0).Partitions {
		plan = append(plan, Move{Partition: p, From: 0, To: 1})
	}
	rb := &Rebalancer{Admins: admins, Stores: []string{"rb"}}
	next, err := rb.Execute(clus, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(next.NodeByID(0).Partitions); got != 0 {
		t.Fatalf("node 0 still owns %d partitions", got)
	}

	// All keys must be readable through the new topology.
	f2 := NewClientFactory(next, time.Second)
	defer f2.Close()
	c2, err := f2.Client(def, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		v, ok, err := c2.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-rebalance Get %s = (%q, %v, %v)", k, v, ok, err)
		}
	}
	// Donor cleanup: node 0's engine must hold none of the moved keys.
	es, _ := servers[0].LocalStore("rb")
	if n := es.Engine().Len(); n != 0 {
		t.Fatalf("donor still holds %d keys after cleanup", n)
	}
}

func TestRebalanceRejectsStalePlan(t *testing.T) {
	def := (&cluster.StoreDef{Name: "rb2", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(t, 2, 8, def)
	admins := map[int]*Admin{
		0: NewAdmin(clus.NodeByID(0).Addr(), time.Second),
		1: NewAdmin(clus.NodeByID(1).Addr(), time.Second),
	}
	owner, _ := clus.OwnerOf(0)
	wrong := 1 - owner.ID
	rb := &Rebalancer{Admins: admins, Stores: []string{"rb2"}}
	if _, err := rb.Execute(clus, []Move{{Partition: 0, From: wrong, To: owner.ID}}); err == nil {
		t.Fatal("stale plan accepted")
	}
}

func TestServerSideRoutingViaLocalAndRemote(t *testing.T) {
	// Server-side routing: a RoutedStore living on node 0 with a local engine
	// store for itself and socket stores for peers (the paper's movable
	// routing module).
	def := (&cluster.StoreDef{Name: "ssr", Replication: 2, RequiredReads: 1, RequiredWrites: 2, Routing: cluster.RouteServer}).WithDefaults()
	clus, servers := startCluster(t, 3, 12, def)
	strategy, err := ring.NewConsistent(clus, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores := make(map[int]Store)
	local, _ := servers[0].LocalStore("ssr")
	stores[0] = local
	for _, n := range clus.Nodes[1:] {
		stores[n.ID] = DialStore("ssr", n.Addr(), time.Second)
	}
	routed, err := NewRouted(RoutedConfig{Def: def, Cluster: clus, Strategy: strategy, Stores: stores})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(routed, nil, 9)
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("srv%d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("server-routed get: (%v, %v)", ok, err)
		}
	}
}

func TestReadOnlySwapOverAdmin(t *testing.T) {
	def := (&cluster.StoreDef{Name: "ro", Engine: cluster.EngineReadOnly, Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, servers := startCluster(t, 1, 4, def)
	srv := servers[0]
	ro, ok := srv.ReadOnlyEngine("ro")
	if !ok {
		t.Fatal("no read-only engine")
	}
	dir := srv.storeDir("ro")
	if err := writeROVersion(dir, 1, "one"); err != nil {
		t.Fatal(err)
	}
	adm := NewAdmin(clus.NodeByID(0).Addr(), time.Second)
	if err := adm.SwapReadOnly("ro", 1); err != nil {
		t.Fatal(err)
	}
	if ro.Version() != 1 {
		t.Fatalf("version after swap = %d", ro.Version())
	}
	ss := DialStore("ro", clus.NodeByID(0).Addr(), time.Second)
	defer ss.Close()
	vs, err := ss.Get([]byte("k"), nil)
	if err != nil || len(vs) != 1 || string(vs[0].Value) != "one" {
		t.Fatalf("Get after swap = (%v, %v)", vs, err)
	}
	if err := adm.RollbackReadOnly("ro"); err != nil {
		t.Fatal(err)
	}
	if ro.Version() != 0 {
		t.Fatalf("version after rollback = %d", ro.Version())
	}
	// writes to a read-only store are refused over the wire
	v := versioned.New([]byte("x"))
	if err := ss.Put([]byte("k"), v, nil); err == nil {
		t.Fatal("put to read-only store succeeded")
	}
}
