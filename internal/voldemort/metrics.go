package voldemort

import "datainfra/internal/metrics"

// Process-wide instruments for the Voldemort hot paths, registered on the
// default registry and served by every /metrics endpoint. Counters and
// histograms aggregate across all in-process stores/servers (one per process
// in production; tests share them, asserting deltas). Every name is
// documented in OPERATIONS.md and checked by cmd/metriclint.
var (
	mRoutedGets = metrics.RegisterCounter("voldemort_routed_get_total",
		"quorum reads issued through RoutedStore.Get")
	mRoutedGetErrors = metrics.RegisterCounter("voldemort_routed_get_errors_total",
		"quorum reads that failed (insufficient reads/zones or store errors)")
	mRoutedGetLatency = metrics.RegisterHistogram("voldemort_routed_get_latency_seconds",
		"end-to-end quorum read latency")
	mRoutedPuts = metrics.RegisterCounter("voldemort_routed_put_total",
		"quorum writes issued through RoutedStore.Put")
	mRoutedPutErrors = metrics.RegisterCounter("voldemort_routed_put_errors_total",
		"quorum writes that failed (insufficient writes/zones or store errors)")
	mRoutedPutLatency = metrics.RegisterHistogram("voldemort_routed_put_latency_seconds",
		"end-to-end quorum write latency")
	mRoutedDeletes = metrics.RegisterCounter("voldemort_routed_delete_total",
		"quorum deletes issued through RoutedStore.Delete")
	mServerRequests = metrics.RegisterCounterVec("voldemort_server_requests_total",
		"socket-protocol requests served, by opcode", "op")
	mSlopQueued = metrics.RegisterCounter("voldemort_slop_queued_hints_total",
		"hints parked by failed or unreached replicas (hinted handoff)")
	mSlopDelivered = metrics.RegisterCounter("voldemort_slop_delivered_hints_total",
		"hints delivered (or dropped as obsolete) to recovered replicas")
	mSlopQueueDepth = metrics.RegisterGauge("voldemort_slop_queue_hints",
		"hints currently parked awaiting replica recovery")
)

// opName labels socket-protocol opcodes for the per-op request counter.
func opName(op byte) string {
	switch op {
	case opPing:
		return "ping"
	case opGet:
		return "get"
	case opGetAll:
		return "getall"
	case opPut:
		return "put"
	case opDelete:
		return "delete"
	case opAddStore:
		return "addstore"
	case opDeleteStore:
		return "deletestore"
	case opGetCluster:
		return "getcluster"
	case opUpdateCluster:
		return "updatecluster"
	case opFetchPartitions:
		return "fetchpartitions"
	case opDeletePartition:
		return "deletepartition"
	case opListStores:
		return "liststores"
	case opSwapReadOnly:
		return "swapro"
	case opRollbackRO:
		return "rollbackro"
	default:
		return "unknown"
	}
}
