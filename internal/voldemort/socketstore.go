package voldemort

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
	"datainfra/internal/rpc"
	"datainfra/internal/trace"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// SocketStore is the client side of the binary protocol: a Store backed by a
// remote node. It is what the routed store uses for client-side routing. By
// default all requests share one multiplexed connection (internal/rpc):
// many calls are in flight at once, correlated by id, so concurrency no
// longer costs one TCP connection per outstanding request. The legacy
// one-request-per-connection pool survives behind DialStorePooled for
// protocol tests and mux-versus-pool benchmarks. Transport failures (a dead
// connection, a node restarting mid-request) are retried a bounded number of
// times with jittered backoff before the error escapes to the routed store's
// quorum accounting — so a blip costs a few milliseconds, not a failed
// replica, while genuine outages still surface fast enough for the failure
// detector to ban the node (§II.B).
type SocketStore struct {
	storeName string
	addr      string
	timeout   time.Duration
	retry     resilience.Policy
	trace     atomic.Value // string; stamped on every outgoing request

	mux    *rpc.Client // nil in pooled (legacy) mode
	pooled bool

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// DialStore returns a SocketStore for storeName on the node at addr, using
// a single multiplexed connection shared by all concurrent calls.
func DialStore(storeName, addr string, timeout time.Duration) *SocketStore {
	s := newSocketStore(storeName, addr, timeout)
	s.mux = rpc.NewClient(addr, s.timeout)
	return s
}

// DialStorePooled returns a SocketStore speaking the legacy lock-step
// protocol over a small connection pool — one request in flight per
// connection. Kept for wire-compatibility tests and as the baseline the
// multiplexed transport is benchmarked against.
func DialStorePooled(storeName, addr string, timeout time.Duration) *SocketStore {
	s := newSocketStore(storeName, addr, timeout)
	s.pooled = true
	return s
}

func newSocketStore(storeName, addr string, timeout time.Duration) *SocketStore {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	return &SocketStore{
		storeName: storeName,
		addr:      addr,
		timeout:   timeout,
		retry: resilience.Policy{
			MaxAttempts:    3,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
		},
	}
}

// SetRetryPolicy overrides the transport retry policy; call before first use.
func (s *SocketStore) SetRetryPolicy(p resilience.Policy) { s.retry = p }

// SetTrace stamps every subsequent request from this store with the trace
// ID (the client edge of trace propagation — see internal/trace). Pass ""
// to stop tracing. Safe for concurrent use; in-flight calls keep the ID
// they started with.
func (s *SocketStore) SetTrace(id string) { s.trace.Store(id) }

// Trace returns the currently stamped trace ID, if any.
func (s *SocketStore) Trace() string {
	id, _ := s.trace.Load().(string)
	return id
}

// Name returns the store name.
func (s *SocketStore) Name() string { return s.storeName }

func (s *SocketStore) getConn() (net.Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("voldemort: socket store closed")
	}
	if n := len(s.conns); n > 0 {
		c := s.conns[n-1]
		s.conns = s.conns[:n-1]
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	return net.DialTimeout("tcp", s.addr, s.timeout)
}

// maxIdleConns bounds the per-store idle connection pool: a burst may dial
// more connections than this, but only this many are retained when they come
// back — the rest are closed so bursty load cannot pin fds forever.
const maxIdleConns = 4

func (s *SocketStore) putConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= maxIdleConns {
		c.Close()
		return
	}
	s.conns = append(s.conns, c)
}

// reqFramePool recycles request-encode buffers across calls: the frame is
// fully written to the socket before the buffer returns to the pool, so the
// encode side of a client call allocates nothing in steady state. (Response
// frames are not pooled — their payloads escape into decoded results.)
var reqFramePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// call sends one request and reads one response, retrying transport
// failures on a fresh connection (callOnce discards the connection on any
// error). Retrying a put that actually landed is safe: the replica answers
// the replay with an obsolete-version conflict, which the quorum layer
// already counts as applied.
func (s *SocketStore) call(req *request) (*response, error) {
	if req.Trace == "" {
		req.Trace = s.Trace()
	}
	resp, err := resilience.RetryValue(context.Background(), s.retry, func() (*response, error) {
		return s.callOnce(req)
	})
	return resp, trace.Annotate(req.Trace, err)
}

// callOnce performs one request/response exchange: over the shared
// multiplexed connection by default, or on a dedicated pooled connection in
// legacy mode. On the mux path the per-request timeout abandons the slot
// (the connection survives for the other in-flight calls) and surfaces as a
// transient net.Error, so the retry loop treats it exactly like the legacy
// deadline kill.
func (s *SocketStore) callOnce(req *request) (*response, error) {
	if !s.pooled {
		payload, err := s.mux.Call(req.appendTo(nil), s.timeout)
		if err != nil {
			return nil, err
		}
		return decodeResponse(payload)
	}
	conn, err := s.getConn()
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(s.timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("voldemort: set deadline: %w", err)
	}
	bp := reqFramePool.Get().(*[]byte)
	buf := appendFramed((*bp)[:0], req.appendTo)
	_, err = conn.Write(buf) // one write: header + payload
	*bp = buf[:0]
	reqFramePool.Put(bp)
	if err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("voldemort: clear deadline: %w", err)
	}
	s.putConn(conn)
	return decodeResponse(frame)
}

// Ping checks node liveness (the failure detector's async probe).
func (s *SocketStore) Ping() error {
	resp, err := s.call(&request{Op: opPing})
	if err != nil {
		return err
	}
	return resp.err()
}

// Get fetches the version set for key.
func (s *SocketStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	req := &request{Op: opGet, Store: s.storeName, Key: key}
	if tr != nil {
		req.TrName, req.TrArg = tr.Name, tr.Arg
	}
	resp, err := s.call(req)
	if err != nil {
		return nil, err
	}
	if err := resp.err(); err != nil {
		return nil, err
	}
	return decodeVersionSet(resp.Payload)
}

// Put writes a versioned value.
func (s *SocketStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	body, err := v.MarshalBinary()
	if err != nil {
		return err
	}
	req := &request{Op: opPut, Store: s.storeName, Key: key, Body: body}
	if tr != nil {
		req.TrName, req.TrArg = tr.Name, tr.Arg
	}
	resp, err := s.call(req)
	if err != nil {
		return err
	}
	return resp.err()
}

// Delete removes dominated versions.
func (s *SocketStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	var body []byte
	if clock != nil {
		var err error
		body, err = clock.MarshalBinary()
		if err != nil {
			return false, err
		}
	}
	resp, err := s.call(&request{Op: opDelete, Store: s.storeName, Key: key, Body: body})
	if err != nil {
		return false, err
	}
	if err := resp.err(); err != nil {
		return false, err
	}
	return len(resp.Payload) == 1 && resp.Payload[0] == 1, nil
}

// Close drops the multiplexed connection and any pooled connections.
func (s *SocketStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
	if s.mux != nil {
		s.mux.Close()
	}
	return nil
}
