package voldemort

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
	"datainfra/internal/trace"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// SocketStore is the client side of the binary protocol: a Store backed by a
// remote node, with a small connection pool. It is what the routed store
// uses for client-side routing. Transport failures (a dead pooled
// connection, a node restarting mid-request) are retried a bounded number of
// times with jittered backoff before the error escapes to the routed store's
// quorum accounting — so a blip costs a few milliseconds, not a failed
// replica, while genuine outages still surface fast enough for the failure
// detector to ban the node (§II.B).
type SocketStore struct {
	storeName string
	addr      string
	timeout   time.Duration
	retry     resilience.Policy
	trace     atomic.Value // string; stamped on every outgoing request

	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// DialStore returns a SocketStore for storeName on the node at addr.
func DialStore(storeName, addr string, timeout time.Duration) *SocketStore {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	return &SocketStore{
		storeName: storeName,
		addr:      addr,
		timeout:   timeout,
		retry: resilience.Policy{
			MaxAttempts:    3,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
		},
	}
}

// SetRetryPolicy overrides the transport retry policy; call before first use.
func (s *SocketStore) SetRetryPolicy(p resilience.Policy) { s.retry = p }

// SetTrace stamps every subsequent request from this store with the trace
// ID (the client edge of trace propagation — see internal/trace). Pass ""
// to stop tracing. Safe for concurrent use; in-flight calls keep the ID
// they started with.
func (s *SocketStore) SetTrace(id string) { s.trace.Store(id) }

// Trace returns the currently stamped trace ID, if any.
func (s *SocketStore) Trace() string {
	id, _ := s.trace.Load().(string)
	return id
}

// Name returns the store name.
func (s *SocketStore) Name() string { return s.storeName }

func (s *SocketStore) getConn() (net.Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("voldemort: socket store closed")
	}
	if n := len(s.conns); n > 0 {
		c := s.conns[n-1]
		s.conns = s.conns[:n-1]
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	return net.DialTimeout("tcp", s.addr, s.timeout)
}

// maxIdleConns bounds the per-store idle connection pool: a burst may dial
// more connections than this, but only this many are retained when they come
// back — the rest are closed so bursty load cannot pin fds forever.
const maxIdleConns = 4

func (s *SocketStore) putConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= maxIdleConns {
		c.Close()
		return
	}
	s.conns = append(s.conns, c)
}

// reqFramePool recycles request-encode buffers across calls: the frame is
// fully written to the socket before the buffer returns to the pool, so the
// encode side of a client call allocates nothing in steady state. (Response
// frames are not pooled — their payloads escape into decoded results.)
var reqFramePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// call sends one request and reads one response, retrying transport
// failures on a fresh connection (callOnce discards the connection on any
// error). Retrying a put that actually landed is safe: the replica answers
// the replay with an obsolete-version conflict, which the quorum layer
// already counts as applied.
func (s *SocketStore) call(req *request) (*response, error) {
	if req.Trace == "" {
		req.Trace = s.Trace()
	}
	resp, err := resilience.RetryValue(context.Background(), s.retry, func() (*response, error) {
		return s.callOnce(req)
	})
	return resp, trace.Annotate(req.Trace, err)
}

// callOnce performs one request/response exchange on one connection.
func (s *SocketStore) callOnce(req *request) (*response, error) {
	conn, err := s.getConn()
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(s.timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("voldemort: set deadline: %w", err)
	}
	bp := reqFramePool.Get().(*[]byte)
	buf := appendFramed((*bp)[:0], req.appendTo)
	_, err = conn.Write(buf) // one write: header + payload
	*bp = buf[:0]
	reqFramePool.Put(bp)
	if err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("voldemort: clear deadline: %w", err)
	}
	s.putConn(conn)
	return decodeResponse(frame)
}

// Ping checks node liveness (the failure detector's async probe).
func (s *SocketStore) Ping() error {
	resp, err := s.call(&request{Op: opPing})
	if err != nil {
		return err
	}
	return resp.err()
}

// Get fetches the version set for key.
func (s *SocketStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	req := &request{Op: opGet, Store: s.storeName, Key: key}
	if tr != nil {
		req.TrName, req.TrArg = tr.Name, tr.Arg
	}
	resp, err := s.call(req)
	if err != nil {
		return nil, err
	}
	if err := resp.err(); err != nil {
		return nil, err
	}
	return decodeVersionSet(resp.Payload)
}

// Put writes a versioned value.
func (s *SocketStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	body, err := v.MarshalBinary()
	if err != nil {
		return err
	}
	req := &request{Op: opPut, Store: s.storeName, Key: key, Body: body}
	if tr != nil {
		req.TrName, req.TrArg = tr.Name, tr.Arg
	}
	resp, err := s.call(req)
	if err != nil {
		return err
	}
	return resp.err()
}

// Delete removes dominated versions.
func (s *SocketStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	var body []byte
	if clock != nil {
		var err error
		body, err = clock.MarshalBinary()
		if err != nil {
			return false, err
		}
	}
	resp, err := s.call(&request{Op: opDelete, Store: s.storeName, Key: key, Body: body})
	if err != nil {
		return false, err
	}
	if err := resp.err(); err != nil {
		return false, err
	}
	return len(resp.Payload) == 1 && resp.Payload[0] == 1, nil
}

// Close drops pooled connections.
func (s *SocketStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
	return nil
}
