package voldemort

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
)

// GetTransform transforms a stored value on the server during a get.
type GetTransform func(value []byte, arg []byte) ([]byte, error)

// PutTransform merges an incoming value into the stored value on the server
// during a put; current is nil when the key is absent.
type PutTransform func(current []byte, incoming []byte, arg []byte) ([]byte, error)

// TransformRegistry holds named server-side transforms. The paper's examples
// — retrieving a sub-list and appending to a list without a client round
// trip — are registered by default under "list.slice" and "list.append".
type TransformRegistry struct {
	mu   sync.RWMutex
	gets map[string]GetTransform
	puts map[string]PutTransform
}

// NewTransformRegistry returns a registry pre-populated with the list
// transforms from the paper plus "bytes.range".
func NewTransformRegistry() *TransformRegistry {
	r := &TransformRegistry{
		gets: make(map[string]GetTransform),
		puts: make(map[string]PutTransform),
	}
	r.RegisterGet("list.slice", listSlice)
	r.RegisterPut("list.append", listAppend)
	r.RegisterGet("bytes.range", bytesRange)
	return r
}

// RegisterGet installs a get transform under name.
func (r *TransformRegistry) RegisterGet(name string, t GetTransform) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gets[name] = t
}

// RegisterPut installs a put transform under name.
func (r *TransformRegistry) RegisterPut(name string, t PutTransform) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts[name] = t
}

// Get looks up a get transform.
func (r *TransformRegistry) Get(name string) (GetTransform, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.gets[name]
	if !ok {
		return nil, fmt.Errorf("%w: get transform %q", ErrUnknownTransform, name)
	}
	return t, nil
}

// Put looks up a put transform.
func (r *TransformRegistry) Put(name string) (PutTransform, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.puts[name]
	if !ok {
		return nil, fmt.Errorf("%w: put transform %q", ErrUnknownTransform, name)
	}
	return t, nil
}

// SliceArg encodes [start,end) bounds for "list.slice" and "bytes.range".
func SliceArg(start, end int) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint32(buf[0:4], uint32(start))
	binary.BigEndian.PutUint32(buf[4:8], uint32(end))
	return buf
}

func decodeSliceArg(arg []byte) (start, end int, err error) {
	if len(arg) != 8 {
		return 0, 0, fmt.Errorf("voldemort: slice arg must be 8 bytes, got %d", len(arg))
	}
	return int(binary.BigEndian.Uint32(arg[0:4])), int(binary.BigEndian.Uint32(arg[4:8])), nil
}

// listSlice treats value as a JSON array and returns the [start,end) slice.
func listSlice(value, arg []byte) ([]byte, error) {
	start, end, err := decodeSliceArg(arg)
	if err != nil {
		return nil, err
	}
	var list []json.RawMessage
	if len(value) > 0 {
		if err := json.Unmarshal(value, &list); err != nil {
			return nil, fmt.Errorf("voldemort: list.slice on non-list value: %w", err)
		}
	}
	if start < 0 {
		start = 0
	}
	if end > len(list) {
		end = len(list)
	}
	if start > end {
		start = end
	}
	return json.Marshal(list[start:end])
}

// listAppend treats the stored value as a JSON array and appends the incoming
// JSON element.
func listAppend(current, incoming, _ []byte) ([]byte, error) {
	var list []json.RawMessage
	if len(current) > 0 {
		if err := json.Unmarshal(current, &list); err != nil {
			return nil, fmt.Errorf("voldemort: list.append on non-list value: %w", err)
		}
	}
	var elem json.RawMessage
	if err := json.Unmarshal(incoming, &elem); err != nil {
		return nil, fmt.Errorf("voldemort: list.append element invalid JSON: %w", err)
	}
	return json.Marshal(append(list, elem))
}

// bytesRange returns value[start:end) clamped to bounds.
func bytesRange(value, arg []byte) ([]byte, error) {
	start, end, err := decodeSliceArg(arg)
	if err != nil {
		return nil, err
	}
	if start < 0 {
		start = 0
	}
	if end > len(value) {
		end = len(value)
	}
	if start > end {
		start = end
	}
	out := make([]byte, end-start)
	copy(out, value[start:end])
	return out, nil
}
