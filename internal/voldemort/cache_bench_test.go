package voldemort

import (
	"fmt"
	"testing"

	"datainfra/internal/storage"
	"datainfra/internal/versioned"
	"datainfra/internal/workload"
)

// benchEngineStore builds a bitcask-backed EngineStore preloaded with
// nkeys 128-byte values. cacheBytes 0 = uncached (the seed read path).
func benchEngineStore(b *testing.B, nkeys int, cacheBytes int64) *EngineStore {
	b.Helper()
	eng, err := storage.OpenBitcask("bench", b.TempDir(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	es := NewEngineStore(eng, 0, nil).EnableCache(cacheBytes)
	val := make([]byte, 128)
	for i := 0; i < nkeys; i++ {
		v := versioned.New(val)
		v.Clock.Increment(0, 1)
		if err := es.Put([]byte(fmt.Sprintf("member:%07d", i)), v, nil); err != nil {
			b.Fatal(err)
		}
	}
	return es
}

// BenchmarkEngineStoreGet is the alloc audit for the cached read path:
// "uncached" must match the seed engine path byte-for-byte (the cache
// branch is nil-checked out), "hot" shows the hit path, and "zipfian"
// is the realistic mix at a budget holding ~10% of the keyspace.
func BenchmarkEngineStoreGet(b *testing.B) {
	const nkeys = 100_000
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member:%07d", i))
	}
	b.Run("uncached", func(b *testing.B) {
		es := benchEngineStore(b, nkeys, 0)
		z := workload.NewFastZipfian(nkeys, 0.99, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := es.Get(keys[z.Next()], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-zipfian", func(b *testing.B) {
		es := benchEngineStore(b, nkeys, 4<<20)
		z := workload.NewFastZipfian(nkeys, 0.99, 1)
		// Warm the hot set so the benchmark measures steady state, not
		// the cold-start fill.
		for i := 0; i < 2*nkeys; i++ {
			if _, err := es.Get(keys[z.Next()], nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := es.Get(keys[z.Next()], nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := es.Cache().Stats()
		if total := st.Hits + st.Misses; total > 0 {
			b.ReportMetric(float64(st.Hits)/float64(total)*100, "hit%")
		}
	})
	b.Run("cached-hot", func(b *testing.B) {
		es := benchEngineStore(b, nkeys, 64<<20)
		// Prime a resident working set, then read only within it.
		for i := 0; i < 1024; i++ {
			if _, err := es.Get(keys[i], nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := es.Get(keys[i&1023], nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineStoreGetParallel is the server-shaped load: many
// goroutines hammering the Zipfian hot set.
func BenchmarkEngineStoreGetParallel(b *testing.B) {
	const nkeys = 100_000
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member:%07d", i))
	}
	for _, cfg := range []struct {
		name  string
		bytes int64
	}{{"uncached", 0}, {"cached", 4 << 20}} {
		b.Run(cfg.name, func(b *testing.B) {
			es := benchEngineStore(b, nkeys, cfg.bytes)
			if cfg.bytes > 0 {
				z := workload.NewFastZipfian(nkeys, 0.99, 99)
				for i := 0; i < 2*nkeys; i++ {
					if _, err := es.Get(keys[z.Next()], nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			var seed int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seed++
				z := workload.NewFastZipfian(nkeys, 0.99, seed)
				for pb.Next() {
					if _, err := es.Get(keys[z.Next()], nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
