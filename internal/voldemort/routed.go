package voldemort

import (
	"fmt"
	"sync"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/failure"
	"datainfra/internal/ring"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// RoutedStore performs quorum reads and writes across replicas (§II.B): it
// walks the consistent-hash ring for the key's preference list, issues
// parallel requests, requires R successful reads / W successful writes,
// repairs stale replicas on reads (read repair) and hands failed writes to
// the slop pusher (hinted handoff).
type RoutedStore struct {
	def      *cluster.StoreDef
	clus     *cluster.Cluster
	strategy ring.Strategy
	detector failure.Detector
	stores   map[int]Store // per-node stores (local engine or socket client)
	slop     *SlopPusher   // nil disables hinted handoff
	timeout  time.Duration
}

// RoutedConfig assembles a RoutedStore.
type RoutedConfig struct {
	Def      *cluster.StoreDef
	Cluster  *cluster.Cluster
	Strategy ring.Strategy
	Detector failure.Detector // nil means AlwaysUp
	Stores   map[int]Store
	Slop     *SlopPusher   // optional
	Timeout  time.Duration // per-operation replica timeout; default 500ms
}

// NewRouted validates the configuration and builds the store.
func NewRouted(cfg RoutedConfig) (*RoutedStore, error) {
	if err := cfg.Def.Validate(len(cfg.Cluster.Nodes)); err != nil {
		return nil, err
	}
	if cfg.Strategy.Replication() != cfg.Def.Replication {
		return nil, fmt.Errorf("voldemort: strategy replication %d != store replication %d",
			cfg.Strategy.Replication(), cfg.Def.Replication)
	}
	det := cfg.Detector
	if det == nil {
		det = failure.AlwaysUp{}
	}
	t := cfg.Timeout
	if t == 0 {
		t = 500 * time.Millisecond
	}
	return &RoutedStore{
		def:      cfg.Def,
		clus:     cfg.Cluster,
		strategy: cfg.Strategy,
		detector: det,
		stores:   cfg.Stores,
		slop:     cfg.Slop,
		timeout:  t,
	}, nil
}

// Name returns the store name.
func (s *RoutedStore) Name() string { return s.def.Name }

// MasterNode names the primary replica node for key. Clients increment this
// node's clock entry so concurrent updates of the same key collide instead
// of forking siblings.
func (s *RoutedStore) MasterNode(key []byte) int32 {
	nodes := s.strategy.NodeList(key)
	if len(nodes) == 0 {
		return -1
	}
	return int32(nodes[0].ID)
}

type nodeResult struct {
	node     int
	zone     int
	versions []*versioned.Versioned
	deleted  bool
	err      error
}

// liveNodes returns the preference list filtered by the failure detector,
// followed by the banned nodes (kept as backups appended at the end).
func (s *RoutedStore) liveNodes(key []byte) (live, banned []*cluster.Node) {
	for _, n := range s.strategy.NodeList(key) {
		if s.detector.Available(n.ID) {
			live = append(live, n)
		} else {
			banned = append(banned, n)
		}
	}
	return live, banned
}

// fanout runs op against up to want nodes in parallel, collecting results
// until enough() is satisfied, every launched request answered, or the
// timeout expires. Stragglers keep running; drain receives their results
// (for detector bookkeeping and hinted handoff) without blocking the caller
// — the Dynamo rule that a quorum response returns as soon as R (or W)
// replicas answer.
func (s *RoutedStore) fanout(nodes []*cluster.Node, want int,
	op func(n *cluster.Node) nodeResult,
	enough func(results []nodeResult) bool,
	drain func(r nodeResult)) []nodeResult {
	if want > len(nodes) {
		want = len(nodes)
	}
	ch := make(chan nodeResult, want) // buffered: stragglers never block
	for _, n := range nodes[:want] {
		go func(n *cluster.Node) { ch <- op(n) }(n)
	}
	results := make([]nodeResult, 0, want)
	deadline := time.NewTimer(s.timeout)
	defer deadline.Stop()
	for len(results) < want {
		select {
		case r := <-ch:
			results = append(results, r)
			if enough != nil && enough(results) {
				if remaining := want - len(results); remaining > 0 && drain != nil {
					go func() {
						for i := 0; i < remaining; i++ {
							drain(<-ch)
						}
					}()
				}
				return results
			}
		case <-deadline.C:
			// Timed-out stragglers are still drained so their outcomes feed
			// the detector and the hint queue instead of vanishing.
			if remaining := want - len(results); remaining > 0 && drain != nil {
				go func() {
					for i := 0; i < remaining; i++ {
						drain(<-ch)
					}
				}()
			}
			return results
		}
	}
	return results
}

func (s *RoutedStore) record(r nodeResult) {
	if r.err == nil || occurredErr(r.err) {
		s.detector.RecordSuccess(r.node)
	} else {
		s.detector.RecordFailure(r.node)
	}
}

func zonesIn(results []nodeResult) int {
	set := map[int]bool{}
	for _, r := range results {
		if r.err == nil {
			set[r.zone] = true
		}
	}
	return len(set)
}

// SetTrace forwards the trace ID to every per-node store that can carry
// one (SocketStores), so a quorum operation entering this routed store is
// observable at each replica it fans out to.
func (s *RoutedStore) SetTrace(id string) {
	for _, st := range s.stores {
		if tc, ok := st.(interface{ SetTrace(string) }); ok {
			tc.SetTrace(id)
		}
	}
}

// Get performs a quorum read with read repair.
func (s *RoutedStore) Get(key []byte, tr *Transform) (_ []*versioned.Versioned, err error) {
	mRoutedGets.Inc()
	defer func(start time.Time) {
		mRoutedGetLatency.Observe(time.Since(start))
		if err != nil {
			mRoutedGetErrors.Inc()
		}
	}(time.Now())
	live, banned := s.liveNodes(key)
	nodes := append(append([]*cluster.Node{}, live...), banned...)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no replicas for key", ErrInsufficientReads)
	}
	op := func(n *cluster.Node) nodeResult {
		st, ok := s.stores[n.ID]
		if !ok {
			return nodeResult{node: n.ID, zone: n.ZoneID, err: fmt.Errorf("no store for node %d", n.ID)}
		}
		vs, err := st.Get(key, tr)
		return nodeResult{node: n.ID, zone: n.ZoneID, versions: vs, err: err}
	}
	quorumMet := func(rs []nodeResult) bool {
		if len(successes(rs)) < s.def.RequiredReads {
			return false
		}
		return s.def.ZoneCountReads == 0 || zonesIn(rs) >= s.def.ZoneCountReads
	}
	// Straggler reads arriving after the quorum early-exit still participate
	// in read repair: until the winning versions are known their results are
	// parked, afterwards each is repaired as it drains.
	var repairMu sync.Mutex
	var repairReady bool
	var repairVersions []*versioned.Versioned
	var lateReads []nodeResult
	drain := func(r nodeResult) {
		s.record(r)
		if !s.def.ReadRepair || tr != nil || r.err != nil {
			return
		}
		repairMu.Lock()
		if !repairReady {
			lateReads = append(lateReads, r)
			repairMu.Unlock()
			return
		}
		maximal := repairVersions
		repairMu.Unlock()
		s.readRepair(key, []nodeResult{r}, maximal)
	}
	results := s.fanout(nodes, s.def.PreferredReads, op, quorumMet, drain)
	for _, r := range results {
		s.record(r)
	}
	good := successes(results)
	// Serially try remaining nodes if the quorum is not yet met.
	tried := s.def.PreferredReads
	for len(good) < s.def.RequiredReads && tried < len(nodes) {
		r := op(nodes[tried])
		s.record(r)
		results = append(results, r)
		good = successes(results)
		tried++
	}
	if len(good) < s.def.RequiredReads {
		return nil, fmt.Errorf("%w: %d of %d required", ErrInsufficientReads, len(good), s.def.RequiredReads)
	}
	if s.def.ZoneCountReads > 0 && zonesIn(results) < s.def.ZoneCountReads {
		return nil, fmt.Errorf("%w: reads from %d zones, need %d", ErrInsufficientZones, zonesIn(results), s.def.ZoneCountReads)
	}
	var all []*versioned.Versioned
	for _, r := range good {
		all = append(all, r.versions...)
	}
	resolved := versioned.Resolve(all)
	if s.def.ReadRepair && tr == nil {
		repairMu.Lock()
		repairReady = true
		repairVersions = resolved
		late := lateReads
		lateReads = nil
		repairMu.Unlock()
		s.readRepair(key, append(append([]nodeResult{}, good...), late...), resolved)
	}
	return resolved, nil
}

func successes(results []nodeResult) []nodeResult {
	var out []nodeResult
	for _, r := range results {
		if r.err == nil {
			out = append(out, r)
		}
	}
	return out
}

// readRepair pushes maximal versions to replicas that missed them (§II.B:
// "read repair detects inconsistencies during gets").
func (s *RoutedStore) readRepair(key []byte, responded []nodeResult, maximal []*versioned.Versioned) {
	for _, r := range responded {
		for _, want := range maximal {
			has := false
			for _, v := range r.versions {
				rel := v.Clock.Compare(want.Clock)
				if rel == vclock.Equal || rel == vclock.After {
					has = true
					break
				}
			}
			if has {
				continue
			}
			if st, ok := s.stores[r.node]; ok {
				// Best-effort: obsolete errors mean the replica caught up.
				_ = st.Put(key, want.Clone(), nil)
			}
		}
	}
}

// Put performs a quorum write. Failed replicas are handed to the slop pusher
// when hinted handoff is enabled, but the write still fails if fewer than W
// replicas acked.
func (s *RoutedStore) Put(key []byte, v *versioned.Versioned, tr *Transform) (err error) {
	mRoutedPuts.Inc()
	defer func(start time.Time) {
		mRoutedPutLatency.Observe(time.Since(start))
		if err != nil && !occurredErr(err) {
			mRoutedPutErrors.Inc()
		}
	}(time.Now())
	live, banned := s.liveNodes(key)
	nodes := append(append([]*cluster.Node{}, live...), banned...)
	if len(nodes) == 0 {
		return fmt.Errorf("%w: no replicas for key", ErrInsufficientWrites)
	}
	op := func(n *cluster.Node) nodeResult {
		st, ok := s.stores[n.ID]
		if !ok {
			return nodeResult{node: n.ID, zone: n.ZoneID, err: fmt.Errorf("no store for node %d", n.ID)}
		}
		return nodeResult{node: n.ID, zone: n.ZoneID, err: st.Put(key, v.Clone(), tr)}
	}
	// Master-first: the first live replica performs the put synchronously so
	// the optimistic-lock check is serialized at one node — two concurrent
	// writers with the same clock race at the master and exactly one loses
	// (§II.B). Only after the master accepts is the write fanned out.
	var results []nodeResult
	rest := nodes
	masterAcked := 0
	if len(live) > 0 {
		master := op(nodes[0])
		s.record(master)
		if occurredErr(master.err) {
			return master.err
		}
		results = append(results, master)
		rest = nodes[1:]
		if master.err == nil {
			masterAcked = 1
		}
	}
	// Stragglers drain in the background: their failures still feed the
	// detector and, when enabled, become hints.
	drain := func(r nodeResult) {
		s.record(r)
		if r.err != nil && !occurredErr(r.err) && s.slop != nil && s.def.HintedHandoff {
			s.slop.Add(Hint{Store: s.def.Name, Node: r.node, Key: key, Value: v.Clone()})
		}
	}
	quorumMet := func(rs []nodeResult) bool {
		acked := masterAcked
		for _, r := range rs {
			if r.err == nil || occurredErr(r.err) {
				acked++
			}
		}
		if acked < s.def.RequiredWrites {
			return false
		}
		return s.def.ZoneCountWrites == 0 || zonesIn(append(rs, results...)) >= s.def.ZoneCountWrites
	}
	// Launched replicas whose results haven't arrived are owned by drain():
	// it hints them if they ultimately fail. Hinting them here as well would
	// park a duplicate (or spurious, if the straggler succeeds) hint.
	launched := make(map[int]bool, len(nodes))
	if len(live) > 0 {
		launched[nodes[0].ID] = true
	}
	fanWant := s.def.PreferredWrites - len(results)
	if fanWant > len(rest) {
		fanWant = len(rest)
	}
	for _, n := range rest[:fanWant] {
		launched[n.ID] = true
	}
	fanned := s.fanout(rest, s.def.PreferredWrites-len(results), op, quorumMet, drain)
	var acks int
	var obsolete error
	for _, r := range fanned {
		s.record(r)
		results = append(results, r)
	}
	for _, r := range results {
		switch {
		case r.err == nil:
			acks++
		case occurredErr(r.err):
			// After the master accepted, a replica rejecting as obsolete
			// already holds this version or newer — count it as applied.
			obsolete = r.err
			acks++
		}
	}
	if obsolete != nil && len(results) > 0 && occurredErr(results[0].err) {
		return obsolete
	}
	// Hand failed and never-attempted replicas to the slop pusher. Launched
	// replicas with no result yet are skipped — drain() hints those on
	// failure; replicas that rejected the write as obsolete already hold it.
	if s.slop != nil && s.def.HintedHandoff {
		for _, n := range nodes {
			var res *nodeResult
			for i := range results {
				if results[i].node == n.ID {
					res = &results[i]
					break
				}
			}
			switch {
			case res != nil && (res.err == nil || occurredErr(res.err)):
				// applied (or already newer) on this replica
			case res == nil && launched[n.ID]:
				// still in flight; drain() owns the hint decision
			default:
				s.slop.Add(Hint{Store: s.def.Name, Node: n.ID, Key: key, Value: v.Clone()})
			}
		}
	}
	if acks < s.def.RequiredWrites {
		return fmt.Errorf("%w: %d of %d required", ErrInsufficientWrites, acks, s.def.RequiredWrites)
	}
	if s.def.ZoneCountWrites > 0 && zonesIn(results) < s.def.ZoneCountWrites {
		return fmt.Errorf("%w: writes to %d zones, need %d", ErrInsufficientZones, zonesIn(results), s.def.ZoneCountWrites)
	}
	return nil
}

// Delete performs a quorum delete.
func (s *RoutedStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	mRoutedDeletes.Inc()
	live, banned := s.liveNodes(key)
	nodes := append(append([]*cluster.Node{}, live...), banned...)
	if len(nodes) == 0 {
		return false, fmt.Errorf("%w: no replicas for key", ErrInsufficientWrites)
	}
	op := func(n *cluster.Node) nodeResult {
		st, ok := s.stores[n.ID]
		if !ok {
			return nodeResult{node: n.ID, zone: n.ZoneID, err: fmt.Errorf("no store for node %d", n.ID)}
		}
		del, err := st.Delete(key, clock)
		return nodeResult{node: n.ID, zone: n.ZoneID, deleted: del, err: err}
	}
	results := s.fanout(nodes, s.def.PreferredWrites, op, nil, nil)
	acks, deleted := 0, false
	for _, r := range results {
		s.record(r)
		if r.err == nil {
			acks++
			deleted = deleted || r.deleted
		} else if s.slop != nil && s.def.HintedHandoff {
			s.slop.Add(Hint{Store: s.def.Name, Node: r.node, Key: key, Delete: true, Clock: clock})
		}
	}
	if acks < s.def.RequiredWrites {
		return false, fmt.Errorf("%w: %d of %d required", ErrInsufficientWrites, acks, s.def.RequiredWrites)
	}
	return deleted, nil
}

// Close closes nothing: the per-node stores are owned by their servers.
func (s *RoutedStore) Close() error { return nil }
