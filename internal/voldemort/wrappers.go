package voldemort

import (
	"errors"
	"sync/atomic"
	"time"

	"datainfra/internal/resilience"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// LatencyStore injects a fixed delay before each operation — used to model
// inter-zone network distance in the multi-datacenter experiments (E15) and
// for failure-detector tests.
type LatencyStore struct {
	Inner Store
	Delay time.Duration
}

// Name delegates to the inner store.
func (s *LatencyStore) Name() string { return s.Inner.Name() }

// Get sleeps then delegates.
func (s *LatencyStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	time.Sleep(s.Delay)
	return s.Inner.Get(key, tr)
}

// Put sleeps then delegates.
func (s *LatencyStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	time.Sleep(s.Delay)
	return s.Inner.Put(key, v, tr)
}

// Delete sleeps then delegates.
func (s *LatencyStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	time.Sleep(s.Delay)
	return s.Inner.Delete(key, clock)
}

// Close delegates.
func (s *LatencyStore) Close() error { return s.Inner.Close() }

// ErrInjected is returned by a failing FlakyStore.
var ErrInjected = errors.New("voldemort: injected failure")

// FlakyStore fails every operation while Failing is set — the transient
// failures the failure detector and repair mechanisms exist for.
type FlakyStore struct {
	Inner   Store
	failing atomic.Bool
}

// SetFailing toggles failure injection.
func (s *FlakyStore) SetFailing(v bool) { s.failing.Store(v) }

// Failing reports the current state.
func (s *FlakyStore) Failing() bool { return s.failing.Load() }

// Name delegates to the inner store.
func (s *FlakyStore) Name() string { return s.Inner.Name() }

// Get fails if failing, else delegates.
func (s *FlakyStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	if s.failing.Load() {
		return nil, ErrInjected
	}
	return s.Inner.Get(key, tr)
}

// Put fails if failing, else delegates.
func (s *FlakyStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	if s.failing.Load() {
		return ErrInjected
	}
	return s.Inner.Put(key, v, tr)
}

// Delete fails if failing, else delegates.
func (s *FlakyStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	if s.failing.Load() {
		return false, ErrInjected
	}
	return s.Inner.Delete(key, clock)
}

// Close delegates.
func (s *FlakyStore) Close() error { return s.Inner.Close() }

// FaultStore routes every operation through a resilience fault injector
// before delegating — the chaos suites wrap per-node stores with it to model
// connection drops, latency spikes and error returns on the replica paths.
// Operations are named "<op>.get" / ".put" / ".delete" against the
// injector's plans, where <op> is Op (default "store").
type FaultStore struct {
	Inner    Store
	Injector resilience.Injector
	Op       string
}

func (s *FaultStore) op(suffix string) string {
	if s.Op == "" {
		return "store." + suffix
	}
	return s.Op + "." + suffix
}

// Name delegates to the inner store.
func (s *FaultStore) Name() string { return s.Inner.Name() }

// Get consults the injector then delegates.
func (s *FaultStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	if err := s.Injector.Inject(s.op("get")); err != nil {
		return nil, err
	}
	return s.Inner.Get(key, tr)
}

// Put consults the injector then delegates. A fault injected here models the
// request lost before reaching the replica: the write does not land.
func (s *FaultStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	if err := s.Injector.Inject(s.op("put")); err != nil {
		return err
	}
	return s.Inner.Put(key, v, tr)
}

// Delete consults the injector then delegates.
func (s *FaultStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	if err := s.Injector.Inject(s.op("delete")); err != nil {
		return false, err
	}
	return s.Inner.Delete(key, clock)
}

// Close delegates.
func (s *FaultStore) Close() error { return s.Inner.Close() }
