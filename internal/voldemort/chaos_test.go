package voldemort

// Chaos tests: quorum reads/writes under a deterministic fault-injection
// schedule (seeded resilience.DeterministicInjector), asserting the paper's
// §II invariants — no acknowledged write is lost, R/W quorum reads never go
// backwards past an acknowledged write, and banned nodes come back through
// the async recovery probe once the network heals.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/failure"
	"datainfra/internal/resilience"
	"datainfra/internal/ring"
	"datainfra/internal/storage"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

type chaosRig struct {
	engines  map[int]*EngineStore
	stores   map[int]Store
	detector *failure.SuccessRatio
	slop     *SlopPusher
	routed   *RoutedStore
	inj      *resilience.DeterministicInjector
}

// newChaosRig builds a 3-node N=3/R=2/W=2 cluster (R+W > N) whose per-node
// stores fault according to plan, with hinted handoff and a bannage detector
// whose probe pings through the same faulty path — so recovery is observed
// only when the injected outage actually ends.
func newChaosRig(t *testing.T, seed int64, plan resilience.FaultPlan) *chaosRig {
	t.Helper()
	clus := cluster.Uniform("chaos", 3, 12, 0)
	def := (&cluster.StoreDef{
		Name: "chaos", Replication: 3, RequiredReads: 2, RequiredWrites: 2,
		ReadRepair: true, HintedHandoff: true,
	}).WithDefaults()
	strategy, err := ring.NewConsistent(clus, 3)
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(seed)
	inj.Default(plan)

	rig := &chaosRig{
		engines: make(map[int]*EngineStore),
		stores:  make(map[int]Store),
		inj:     inj,
	}
	for _, node := range clus.Nodes {
		es := NewEngineStore(storage.NewMemory("chaos"), node.ID, nil)
		rig.engines[node.ID] = es
		rig.stores[node.ID] = &FaultStore{
			Inner: es, Injector: inj, Op: fmt.Sprintf("node%d", node.ID),
		}
	}

	prober := failure.ProberFunc(func(node int) error {
		_, err := rig.stores[node].Get([]byte("__probe__"), nil)
		return err
	})
	rig.detector = failure.NewSuccessRatio(failure.SuccessRatioConfig{
		Threshold: 0.6, MinRequests: 10, Window: time.Second,
		ProbeInterval: 2 * time.Millisecond,
	}, prober)
	t.Cleanup(rig.detector.Close)

	rig.slop = NewSlopPusher(func(node int, store string) (Store, bool) {
		s, ok := rig.stores[node]
		return s, ok
	}, rig.detector, 0)

	rig.routed, err = NewRouted(RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy,
		Detector: rig.detector, Stores: rig.stores, Slop: rig.slop,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func waitRecovered(t *testing.T, d *failure.SuccessRatio) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(d.Banned()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("banned nodes did not recover via probe: %v", d.Banned())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func drainSlops(t *testing.T, p *SlopPusher) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.Pending() > 0 {
		p.DeliverOnce()
		if time.Now().After(deadline) {
			t.Fatalf("%d slops stuck in queue", p.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosNoAcknowledgedWriteLost writes distinct keys under injected drops,
// errors and latency spikes; after healing the network, letting banned nodes
// recover and draining the hint queue, every acknowledged write must be
// readable with its acknowledged value. Writes the fault schedule rejected
// may or may not survive — the invariant covers only acks.
func TestChaosNoAcknowledgedWriteLost(t *testing.T) {
	rig := newChaosRig(t, 42, resilience.FaultPlan{
		DropProb: 0.15, ErrProb: 0.10,
		LatencyProb: 0.05, Latency: 200 * time.Microsecond,
	})
	c := NewClient(rig.routed, nil, 100)

	acked := make(map[string]string)
	for i := 0; i < 250; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := c.Put([]byte(k), []byte(v)); err == nil {
			acked[k] = v
		}
	}
	if len(acked) == 0 {
		t.Fatal("fault schedule acknowledged nothing; chaos run is vacuous")
	}
	if rig.inj.Total() == 0 {
		t.Fatal("no faults injected; chaos run is vacuous")
	}
	t.Logf("acked %d/250 writes under %s", len(acked), rig.inj)

	rig.inj.Disarm()
	waitRecovered(t, rig.detector)
	drainSlops(t, rig.slop)

	for k, v := range acked {
		got, ok, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("post-heal Get(%s): %v", k, err)
		}
		if !ok || string(got) != v {
			t.Fatalf("acknowledged write lost: key %s = (%q, %v), want %q", k, got, ok, v)
		}
	}
}

// TestChaosQuorumReadsNeverLoseAckedWrites hammers a single key with strictly
// ordered versions (the test owns the vector-clock cursor, so every attempt —
// acked or not — is a strict descendant of the previous one) and checks the
// R+W > N staleness bound op by op: a successful quorum read must return a
// value at least as new as the last acknowledged write. Values from failed
// writes may appear (partial writes are not rolled back in Dynamo-style
// stores); values older than the last ack must not.
func TestChaosQuorumReadsNeverLoseAckedWrites(t *testing.T) {
	rig := newChaosRig(t, 99, resilience.FaultPlan{DropProb: 0.2, ErrProb: 0.1})
	key := []byte("quorum")

	opOf := make(map[string]int) // value -> op index
	lastAcked := -1
	cur := vclock.New()
	for op := 0; op < 300; op++ {
		if op%2 == 0 {
			val := fmt.Sprintf("v%d", op)
			opOf[val] = op
			cur = cur.Incremented(0, int64(op))
			v := versioned.New([]byte(val))
			v.Clock = cur
			if err := rig.routed.Put(key, v, nil); err == nil {
				lastAcked = op
			}
			continue
		}
		vs, err := rig.routed.Get(key, nil)
		if err != nil || lastAcked < 0 {
			continue // quorum unavailable this round; not a violation
		}
		if len(vs) != 1 {
			t.Fatalf("op %d: %d concurrent versions of a strictly ordered chain", op, len(vs))
		}
		got := string(vs[0].Value)
		j, known := opOf[got]
		if !known || j < lastAcked {
			t.Fatalf("op %d: quorum read %q (op %d) older than last acked op %d", op, got, j, lastAcked)
		}
	}
	if lastAcked < 0 {
		t.Fatal("no write ever acknowledged; chaos run is vacuous")
	}
}

// TestChaosBannedNodeRecoversViaProbe hard-fails one node until the bannage
// detector trips, then heals the injector and requires the async probe — not
// client traffic — to bring the node back.
func TestChaosBannedNodeRecoversViaProbe(t *testing.T) {
	rig := newChaosRig(t, 7, resilience.FaultPlan{})
	rig.inj.Plan("node0.put", resilience.FaultPlan{ErrProb: 1})
	rig.inj.Plan("node0.get", resilience.FaultPlan{ErrProb: 1})
	c := NewClient(rig.routed, nil, 100)

	for i := 0; i < 50 && rig.detector.Available(0); i++ {
		// W=2 of the two healthy nodes still acks; node 0 accumulates failures.
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatalf("put with one node down: %v", err)
		}
	}
	if rig.detector.Available(0) {
		t.Fatal("node 0 never banned despite 100% failure rate")
	}
	if _, ok := rig.detector.BannedSince(0); !ok {
		t.Fatal("BannedSince unset for a banned node")
	}

	rig.inj.Disarm()
	waitRecovered(t, rig.detector)
	if !rig.detector.Available(0) {
		t.Fatal("node 0 still banned after the network healed")
	}
	// The outage's writes were hinted; drain them and check node 0 caught up.
	drainSlops(t, rig.slop)
	if n := rig.slop.Pending(); n != 0 {
		t.Fatalf("%d hints still pending after recovery", n)
	}
}

// startFaultProxy forwards TCP connections to target, injecting latency and
// mid-flight kills on the client->server path per the seeded schedule
// ("muxproxy.conn.read" / ".write"). Used to chaos-test the multiplexed
// socket transport end to end.
func startFaultProxy(t *testing.T, target string, inj *resilience.DeterministicInjector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				fc := inj.WrapConn("muxproxy.conn", c)
				defer fc.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				go func() { _, _ = io.Copy(up, fc) }()
				_, _ = io.Copy(fc, up)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestChaosMuxNoCorrelationCrossing hammers one multiplexed connection from
// many goroutines through a proxy injecting latency and mid-flight
// connection kills. Invariants: a Get for a key never returns another key's
// value (correlation IDs never cross, even across redials), and every
// request resolves — with a value or an error — rather than hanging.
func TestChaosMuxNoCorrelationCrossing(t *testing.T) {
	def := (&cluster.StoreDef{Name: "mux", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(t, 1, 4, def)

	inj := resilience.NewInjector(11)
	inj.Plan("muxproxy.conn.read", resilience.FaultPlan{
		DropProb: 0.02, LatencyProb: 0.10, Latency: 500 * time.Microsecond,
	})
	inj.Plan("muxproxy.conn.write", resilience.FaultPlan{DropProb: 0.01})
	proxyAddr := startFaultProxy(t, clus.NodeByID(0).Addr(), inj)

	ss := DialStore("mux", proxyAddr, time.Second)
	defer ss.Close()
	ss.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    12,
		InitialBackoff: 200 * time.Microsecond,
		MaxBackoff:     5 * time.Millisecond,
	})

	const goroutines, ops = 16, 25
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := []byte(fmt.Sprintf("g%d-k%d", g, i))
				want := fmt.Sprintf("g%d-v%d", g, i)
				v := versioned.New([]byte(want))
				// An obsolete-version conflict means our own retried put
				// already landed (at-least-once): counts as applied, exactly
				// as the quorum layer treats it.
				if err := ss.Put(key, v, nil); err != nil && !errors.Is(err, versioned.ErrObsoleteVersion) {
					errs <- fmt.Errorf("g%d put %d never resolved: %v", g, i, err)
					return
				}
				vs, err := ss.Get(key, nil)
				if err != nil {
					errs <- fmt.Errorf("g%d get %d never resolved: %v", g, i, err)
					return
				}
				if len(vs) == 0 {
					errs <- fmt.Errorf("g%d get %d: acknowledged put invisible", g, i)
					return
				}
				for _, got := range vs {
					if string(got.Value) != want {
						errs <- fmt.Errorf("g%d get %d = %q, want %q: responses crossed correlation ids", g, i, got.Value, want)
						return
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos workload hung: an in-flight mux request never resolved")
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; chaos run is vacuous")
	}
	t.Logf("mux survived %s", inj)
}

// TestChaosMuxConnKillResolvesInflight repeatedly severs the only proxy
// route while concurrent requests are in flight on the shared mux
// connection: every caller must get an answer (success after redial+retry,
// or an error) — none may hang on an abandoned correlation slot.
func TestChaosMuxConnKillResolvesInflight(t *testing.T) {
	def := (&cluster.StoreDef{Name: "kill", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(t, 1, 4, def)

	var pmu sync.Mutex
	var live []net.Conn
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			pmu.Lock()
			live = append(live, c)
			pmu.Unlock()
			go func(c net.Conn) {
				defer c.Close()
				up, err := net.Dial("tcp", clus.NodeByID(0).Addr())
				if err != nil {
					return
				}
				defer up.Close()
				go func() { _, _ = io.Copy(up, c) }()
				_, _ = io.Copy(c, up)
			}(c)
		}
	}()

	ss := DialStore("kill", ln.Addr().String(), 500*time.Millisecond)
	defer ss.Close()
	ss.SetRetryPolicy(resilience.Policy{
		MaxAttempts:    20,
		InitialBackoff: 500 * time.Microsecond,
		MaxBackoff:     5 * time.Millisecond,
	})

	stopKiller := make(chan struct{})
	var kills atomic.Int64
	var killerWg sync.WaitGroup
	killerWg.Add(1)
	go func() {
		defer killerWg.Done()
		for {
			select {
			case <-stopKiller:
				return
			case <-time.After(500 * time.Microsecond):
				pmu.Lock()
				for _, c := range live {
					c.Close()
					kills.Add(1)
				}
				live = live[:0]
				pmu.Unlock()
			}
		}
	}()

	const goroutines, ops = 8, 60
	var wg sync.WaitGroup
	var resolved atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := []byte(fmt.Sprintf("kg%d-k%d", g, i))
				v := versioned.New([]byte("v"))
				_ = ss.Put(key, v, nil) // errors allowed; hangs are not
				resolved.Add(1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("only %d/%d requests resolved under repeated conn kills", resolved.Load(), goroutines*ops)
	}
	close(stopKiller)
	killerWg.Wait()
	if got := resolved.Load(); got != goroutines*ops {
		t.Fatalf("resolved %d of %d requests", got, goroutines*ops)
	}
	if kills.Load() == 0 {
		t.Fatal("no connections killed mid-flight; chaos run is vacuous")
	}
	t.Logf("all %d requests resolved across %d mid-flight conn kills", resolved.Load(), kills.Load())
}
