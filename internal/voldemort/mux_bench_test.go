package voldemort

// Mux-versus-pool throughput benchmarks for the socket transport. The
// interesting row is mux at 16 callers: one shared multiplexed connection
// carrying 16 concurrent requests, against the same 16 callers serialized on
// one lock-step connection (how the old transport behaved at a fixed
// connection count), and against the unconstrained pool (the old transport's
// actual behavior: N callers cost N connections).

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/versioned"
)

// startDelayProxy fronts target with a fixed one-way latency in each
// direction — a bandwidth-unconstrained link approximation. Chunks propagate
// through a timestamped queue, so many frames in flight overlap their
// propagation delay exactly as they would on a real link; a lock-step
// protocol instead pays the full RTT per request. On loopback (where the
// real RTT is pure CPU) this is what makes the pipelining win measurable.
func startDelayProxy(tb testing.TB, target string, oneWay time.Duration) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				type chunk struct {
					data []byte
					due  time.Time
				}
				q := make(chan chunk, 1024)
				go func() {
					defer dst.Close()
					for ch := range q {
						time.Sleep(time.Until(ch.due))
						if _, err := dst.Write(ch.data); err != nil {
							return
						}
					}
				}()
				buf := make([]byte, 64<<10)
				defer close(q)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						q <- chunk{data: append([]byte(nil), buf[:n]...), due: time.Now().Add(oneWay)}
					}
					if err != nil {
						return
					}
				}
			}
			go pipe(up, c)
			go pipe(c, up)
		}
	}()
	return ln.Addr().String()
}

func BenchmarkSocketStoreParallel(b *testing.B) {
	def := (&cluster.StoreDef{Name: "bench", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	clus, _ := startCluster(b, 1, 8, def)
	addr := clus.NodeByID(0).Addr()

	seed := DialStore("bench", addr, 2*time.Second)
	if err := seed.Put([]byte("k"), versioned.New([]byte("0123456789abcdef0123456789abcdef")), nil); err != nil {
		b.Fatal(err)
	}
	seed.Close()

	// 500µs each way = 1ms RTT, a realistic cross-rack order of magnitude.
	delayed := startDelayProxy(b, addr, 500*time.Microsecond)

	transports := []struct {
		name string
		dial func() *SocketStore
		sem  int // >0 caps client-side in-flight requests (lock-step conns)
	}{
		{name: "mux1conn", dial: func() *SocketStore { return DialStore("bench", addr, 2*time.Second) }},
		{name: "lockstep1conn", dial: func() *SocketStore { return DialStorePooled("bench", addr, 2*time.Second) }, sem: 1},
		{name: "pool", dial: func() *SocketStore { return DialStorePooled("bench", addr, 2*time.Second) }},
		{name: "mux1conn-rtt1ms", dial: func() *SocketStore { return DialStore("bench", delayed, 2*time.Second) }},
		{name: "lockstep1conn-rtt1ms", dial: func() *SocketStore { return DialStorePooled("bench", delayed, 2*time.Second) }, sem: 1},
	}
	for _, tr := range transports {
		for _, callers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/callers=%d", tr.name, callers), func(b *testing.B) {
				ss := tr.dial()
				defer ss.Close()
				var sem chan struct{}
				if tr.sem > 0 {
					sem = make(chan struct{}, tr.sem)
				}
				var wg sync.WaitGroup
				b.ReportAllocs()
				b.ResetTimer()
				for c := 0; c < callers; c++ {
					n := b.N / callers
					if c < b.N%callers {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if sem != nil {
								sem <- struct{}{}
							}
							_, err := ss.Get([]byte("k"), nil)
							if sem != nil {
								<-sem
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
			})
		}
	}
}
