package voldemort

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"datainfra/internal/versioned"
)

// Wire protocol: every message is a length-prefixed frame (uint32 big-endian
// length, then payload). Requests carry an opcode plus length-prefixed
// fields; responses carry a status byte, an error message and a payload.

// Opcodes.
const (
	opPing            = 0
	opGet             = 1
	opPut             = 2
	opDelete          = 3
	opAddStore        = 11
	opDeleteStore     = 12
	opGetCluster      = 13
	opUpdateCluster   = 14
	opFetchPartitions = 15
	opDeletePartition = 16
	opListStores      = 17
	opSwapReadOnly    = 18
	opRollbackRO      = 19
	opGetAll          = 20
)

// Response status codes.
const (
	statusOK               = 0
	statusError            = 1
	statusObsolete         = 2
	statusUnknownStore     = 3
	statusUnknownTransform = 4
)

const maxFrame = 64 << 20 // 64 MB sanity cap

var errFrameTooLarge = errors.New("voldemort: frame exceeds max size")

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one frame, reusing buf's backing array when it is
// large enough — the steady-state request loop reads into one per-connection
// buffer instead of allocating per frame. The returned slice aliases buf.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errFrameTooLarge
	}
	var payload []byte
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// appendFramed appends a length-prefixed frame holding the encoding produced
// by fill to dst and returns it. Combined with a single Write this halves
// the syscalls of the header-then-payload path and reuses dst's capacity.
func appendFramed(dst []byte, fill func([]byte) []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = fill(dst)
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(dst)-start-4))
	return dst
}

// buffer helpers ------------------------------------------------------------

type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte) { w.b = append(w.b, v) }
func (w *wbuf) u16(v int) { w.b = binary.BigEndian.AppendUint16(w.b, uint16(v)) }
func (w *wbuf) u32(v int) { w.b = binary.BigEndian.AppendUint32(w.b, uint32(v)) }
func (w *wbuf) bytes16(p []byte) {
	w.u16(len(p))
	w.b = append(w.b, p...)
}
func (w *wbuf) str16(s string) {
	w.u16(len(s))
	w.b = append(w.b, s...)
}
func (w *wbuf) bytes32(p []byte) {
	w.u32(len(p))
	w.b = append(w.b, p...)
}

type rbuf struct{ b []byte }

var errShortBuffer = errors.New("voldemort: short buffer")

func (r *rbuf) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, errShortBuffer
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}
func (r *rbuf) u16() (int, error) {
	if len(r.b) < 2 {
		return 0, errShortBuffer
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return int(v), nil
}
func (r *rbuf) u32() (int, error) {
	if len(r.b) < 4 {
		return 0, errShortBuffer
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return int(v), nil
}
func (r *rbuf) bytes16() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if len(r.b) < n {
		return nil, errShortBuffer
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}
func (r *rbuf) bytes32() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if len(r.b) < n {
		return nil, errShortBuffer
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

// request -------------------------------------------------------------------

type request struct {
	Op     byte
	Store  string
	Key    []byte
	Body   []byte
	TrName string
	TrArg  []byte
	Trace  string // optional trace ID, trailing field on the wire
}

func (q *request) encode() []byte {
	return q.appendTo(nil)
}

func (q *request) appendTo(b []byte) []byte {
	w := wbuf{b: b}
	w.u8(q.Op)
	w.str16(q.Store)
	w.bytes32(q.Key)
	w.bytes32(q.Body)
	w.str16(q.TrName)
	w.bytes32(q.TrArg)
	if q.Trace != "" {
		// Trailing optional field: absent frames decode with Trace == "",
		// and pre-trace decoders ignore trailing bytes — compatible both ways.
		w.str16(q.Trace)
	}
	return w.b
}

func decodeRequest(data []byte) (*request, error) {
	r := rbuf{b: data}
	var q request
	var err error
	if q.Op, err = r.u8(); err != nil {
		return nil, err
	}
	var s []byte
	if s, err = r.bytes16(); err != nil {
		return nil, err
	}
	q.Store = string(s)
	if q.Key, err = r.bytes32(); err != nil {
		return nil, err
	}
	if q.Body, err = r.bytes32(); err != nil {
		return nil, err
	}
	if s, err = r.bytes16(); err != nil {
		return nil, err
	}
	q.TrName = string(s)
	if q.TrArg, err = r.bytes32(); err != nil {
		return nil, err
	}
	if len(r.b) > 0 {
		if s, err = r.bytes16(); err != nil {
			return nil, err
		}
		q.Trace = string(s)
	}
	return &q, nil
}

// response ------------------------------------------------------------------

type response struct {
	Status  byte
	Message string
	Payload []byte
}

func (p *response) encode() []byte {
	return p.appendTo(nil)
}

func (p *response) appendTo(b []byte) []byte {
	w := wbuf{b: b}
	w.u8(p.Status)
	w.str16(p.Message)
	w.bytes32(p.Payload)
	return w.b
}

func decodeResponse(data []byte) (*response, error) {
	r := rbuf{b: data}
	var p response
	var err error
	if p.Status, err = r.u8(); err != nil {
		return nil, err
	}
	var m []byte
	if m, err = r.bytes16(); err != nil {
		return nil, err
	}
	p.Message = string(m)
	if p.Payload, err = r.bytes32(); err != nil {
		return nil, err
	}
	return &p, nil
}

// err converts a response into a Go error mirroring the server-side failure.
func (p *response) err() error {
	switch p.Status {
	case statusOK:
		return nil
	case statusObsolete:
		return fmt.Errorf("%w: %s", versioned.ErrObsoleteVersion, p.Message)
	case statusUnknownStore:
		return fmt.Errorf("%w: %s", ErrUnknownStore, p.Message)
	case statusUnknownTransform:
		return fmt.Errorf("%w: %s", ErrUnknownTransform, p.Message)
	default:
		return fmt.Errorf("voldemort: remote error: %s", p.Message)
	}
}

func errToResponse(err error, payload []byte) *response {
	switch {
	case err == nil:
		return &response{Status: statusOK, Payload: payload}
	case occurredErr(err):
		return &response{Status: statusObsolete, Message: err.Error()}
	case errors.Is(err, ErrUnknownStore):
		return &response{Status: statusUnknownStore, Message: err.Error()}
	case errors.Is(err, ErrUnknownTransform):
		return &response{Status: statusUnknownTransform, Message: err.Error()}
	default:
		return &response{Status: statusError, Message: err.Error()}
	}
}

// multi-key encoding ----------------------------------------------------------

// encodeKeys packs a key list: u16 count, then u32-length-prefixed keys.
func encodeKeys(keys [][]byte) []byte {
	var w wbuf
	w.u16(len(keys))
	for _, k := range keys {
		w.bytes32(k)
	}
	return w.b
}

func decodeKeys(data []byte) ([][]byte, error) {
	r := rbuf{b: data}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		k, err := r.bytes32()
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), k...))
	}
	return out, nil
}

// encodeKeyedVersionSets packs getAll results: u16 count, then per entry a
// u32-length key and a u32-length version-set blob.
func encodeKeyedVersionSets(entries map[string][]*versioned.Versioned) ([]byte, error) {
	var w wbuf
	w.u16(len(entries))
	for k, vs := range entries {
		data, err := encodeVersionSet(vs)
		if err != nil {
			return nil, err
		}
		w.bytes32([]byte(k))
		w.bytes32(data)
	}
	return w.b, nil
}

func decodeKeyedVersionSets(data []byte) (map[string][]*versioned.Versioned, error) {
	r := rbuf{b: data}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]*versioned.Versioned, n)
	for i := 0; i < n; i++ {
		k, err := r.bytes32()
		if err != nil {
			return nil, err
		}
		blob, err := r.bytes32()
		if err != nil {
			return nil, err
		}
		vs, err := decodeVersionSet(blob)
		if err != nil {
			return nil, err
		}
		out[string(k)] = vs
	}
	return out, nil
}

// version-set encoding --------------------------------------------------------

func encodeVersionSet(vs []*versioned.Versioned) ([]byte, error) {
	var w wbuf
	w.u16(len(vs))
	for _, v := range vs {
		b, err := v.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.bytes32(b)
	}
	return w.b, nil
}

func decodeVersionSet(data []byte) ([]*versioned.Versioned, error) {
	r := rbuf{b: data}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	out := make([]*versioned.Versioned, 0, n)
	for i := 0; i < n; i++ {
		b, err := r.bytes32()
		if err != nil {
			return nil, err
		}
		var v versioned.Versioned
		if err := v.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		out = append(out, &v)
	}
	return out, nil
}
