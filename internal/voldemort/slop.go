package voldemort

import (
	"context"
	"sync"
	"time"

	"datainfra/internal/failure"
	"datainfra/internal/resilience"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// Hint is a write that could not reach its destination replica and is parked
// locally until the destination recovers — hinted handoff (§II.B: "hinted
// handoff is triggered during puts").
type Hint struct {
	Store  string
	Node   int // destination node
	Key    []byte
	Value  *versioned.Versioned // nil for deletes
	Delete bool
	Clock  *vclock.Clock // delete clock
}

// StoreResolver returns the store handle for (node, storeName); the pusher
// uses it to deliver hints.
type StoreResolver func(node int, store string) (Store, bool)

// SlopPusher queues hints and delivers them in the background once the
// failure detector reports the destination available again.
type SlopPusher struct {
	mu    sync.Mutex
	queue []Hint

	resolve  StoreResolver
	detector failure.Detector
	interval time.Duration
	retry    resilience.Policy
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
}

// NewSlopPusher builds a pusher. Call Start to begin background delivery, or
// drive it manually with DeliverOnce (tests).
func NewSlopPusher(resolve StoreResolver, detector failure.Detector, interval time.Duration) *SlopPusher {
	if detector == nil {
		detector = failure.AlwaysUp{}
	}
	if interval == 0 {
		interval = 100 * time.Millisecond
	}
	return &SlopPusher{
		resolve:  resolve,
		detector: detector,
		interval: interval,
		// Per-hint delivery budget: a couple of quick jittered retries, then
		// the hint goes back in the queue until the next delivery round, so
		// one flapping node cannot stall the drain.
		retry: resilience.Policy{
			MaxAttempts:    2,
			InitialBackoff: time.Millisecond,
			MaxBackoff:     20 * time.Millisecond,
		},
		stop: make(chan struct{}),
	}
}

// SetRetryPolicy overrides the per-hint delivery retry policy.
func (p *SlopPusher) SetRetryPolicy(pol resilience.Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retry = pol
}

// Add parks a hint.
func (p *SlopPusher) Add(h Hint) {
	p.mu.Lock()
	p.queue = append(p.queue, h)
	depth := len(p.queue)
	p.mu.Unlock()
	mSlopQueued.Inc()
	mSlopQueueDepth.Set(int64(depth))
}

// Pending returns the number of undelivered hints.
func (p *SlopPusher) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// DeliverOnce attempts delivery of every queued hint whose destination is
// available; it returns how many were delivered. Hints rejected as obsolete
// are dropped (the replica already has newer data).
func (p *SlopPusher) DeliverOnce() int {
	p.mu.Lock()
	pending := p.queue
	p.queue = nil
	p.mu.Unlock()

	p.mu.Lock()
	retry := p.retry
	p.mu.Unlock()

	delivered := 0
	var remaining []Hint
	for _, h := range pending {
		if !p.detector.Available(h.Node) {
			remaining = append(remaining, h)
			continue
		}
		st, ok := p.resolve(h.Node, h.Store)
		if !ok {
			remaining = append(remaining, h)
			continue
		}
		// Bounded jittered retries before giving the hint back to the queue:
		// a transient blip on a freshly recovered node shouldn't cost a full
		// delivery interval.
		err := resilience.Retry(context.Background(), retry, func() error {
			if h.Delete {
				_, err := st.Delete(h.Key, h.Clock)
				return err
			}
			return st.Put(h.Key, h.Value, nil)
		})
		switch {
		case err == nil, occurredErr(err):
			// Obsolete means the replica already has this write or newer —
			// the hint is moot, count it drained.
			delivered++
			p.detector.RecordSuccess(h.Node)
		default:
			p.detector.RecordFailure(h.Node)
			remaining = append(remaining, h)
		}
	}
	p.mu.Lock()
	if len(remaining) > 0 {
		p.queue = append(remaining, p.queue...)
	}
	depth := len(p.queue)
	p.mu.Unlock()
	mSlopDelivered.Add(int64(delivered))
	mSlopQueueDepth.Set(int64(depth))
	return delivered
}

// Start launches the background delivery loop.
func (p *SlopPusher) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.DeliverOnce()
			}
		}
	}()
}

// Close stops the background loop.
func (p *SlopPusher) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
}
