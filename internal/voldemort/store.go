// Package voldemort implements the distributed key-value store of §II:
// Dynamo-style quorum reads and writes over a consistent-hash ring, vector
// clock versioning with application-level conflict resolution, read repair
// and hinted handoff, pluggable per-node storage engines, client- and
// server-side routing over a binary socket protocol, an admin service with
// no-downtime rebalancing, and the read-only data cycle of Figure II.3.
//
// Observability: routed-store traffic, per-opcode server requests and the
// hinted-handoff queue are exported through internal/metrics (names under
// voldemort_*, catalogued in OPERATIONS.md), and every socket request can
// carry a client-minted trace ID (internal/trace) as an optional trailing
// protocol field — see SocketStore.SetTrace and Server.RecentTraces.
package voldemort

import (
	"errors"
	"fmt"

	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// Errors surfaced by store operations.
var (
	// ErrInsufficientReads means fewer than R replicas answered a get.
	ErrInsufficientReads = errors.New("voldemort: insufficient successful reads")
	// ErrInsufficientWrites means fewer than W replicas acked a put.
	ErrInsufficientWrites = errors.New("voldemort: insufficient successful writes")
	// ErrInsufficientZones means the zone-count requirement was not met.
	ErrInsufficientZones = errors.New("voldemort: insufficient zones responded")
	// ErrNodeDown marks a request refused because the failure detector
	// considers the node unavailable.
	ErrNodeDown = errors.New("voldemort: node marked down")
	// ErrUnknownStore is returned for operations on undefined stores.
	ErrUnknownStore = errors.New("voldemort: unknown store")
	// ErrUnknownTransform is returned when a request names an unregistered
	// server-side transform.
	ErrUnknownTransform = errors.New("voldemort: unknown transform")
)

// Transform names a server-side transformation applied to the value during a
// get or put (methods 3 and 4 of Figure II.2), saving a client round trip.
type Transform struct {
	Name string
	Arg  []byte
}

// Store is the uniform store contract every layer of the Figure II.1 stack
// implements — engine adapters, socket clients, the routed store, repair
// wrappers — which is what makes the modules interchangeable and mockable.
type Store interface {
	// Name returns the store (table) name.
	Name() string
	// Get returns all concurrent versions for key; tr optionally transforms
	// the value server-side (nil for plain gets).
	Get(key []byte, tr *Transform) ([]*versioned.Versioned, error)
	// Put writes v; tr optionally transforms the stored value server-side.
	Put(key []byte, v *versioned.Versioned, tr *Transform) error
	// Delete removes versions dominated by clock.
	Delete(key []byte, clock *vclock.Clock) (bool, error)
	// Close releases resources.
	Close() error
}

// UpdateAction is the read-modify-write body run by ApplyUpdate.
// It receives the current resolved version (nil if absent) and returns the
// new value to store.
type UpdateAction func(current *versioned.Versioned) ([]byte, error)

// Resolver collapses concurrent versions to one — conflict resolution is
// delegated to the application (§II.B). The default resolver is
// last-writer-wins by clock timestamp.
type Resolver func([]*versioned.Versioned) *versioned.Versioned

// LWWResolver picks the version with the newest timestamp among maximal
// versions.
func LWWResolver(vs []*versioned.Versioned) *versioned.Versioned {
	v, ok := versioned.Latest(versioned.Resolve(vs))
	if !ok {
		return nil
	}
	return v
}

// occurredErr reports whether err is the logical obsolete-version conflict
// (as opposed to an availability failure).
func occurredErr(err error) bool {
	return errors.Is(err, versioned.ErrObsoleteVersion)
}

// nodeError annotates an error with the node it came from.
type nodeError struct {
	node int
	err  error
}

func (e nodeError) Error() string { return fmt.Sprintf("node %d: %v", e.node, e.err) }
func (e nodeError) Unwrap() error { return e.err }
