package voldemort

import (
	"fmt"
	"time"

	"datainfra/internal/versioned"
)

// Client is the application-facing API of Figure II.2:
//
//  1. VectorClock<V> get(K key)
//  2. put(K key, VectorClock<V> value)
//  3. VectorClock<V> get(K key, T transform)
//  4. put(K key, VectorClock<V> value, T transform)
//  5. applyUpdate(UpdateAction action, int retries)
//
// Conflict resolution of concurrent versions is delegated to the application
// via the Resolver; the default is last-writer-wins.
type Client struct {
	store    Store
	resolver Resolver
	nodeID   int32 // stamps client-generated clock increments
	now      func() time.Time
}

// NewClient wraps a store (typically a RoutedStore). resolver may be nil for
// LWW. clientID is the fallback clock-entry id when the store cannot name
// the key's master replica.
func NewClient(store Store, resolver Resolver, clientID int) *Client {
	if resolver == nil {
		resolver = LWWResolver
	}
	return &Client{store: store, resolver: resolver, nodeID: int32(clientID), now: time.Now}
}

// masterAware stores can name the master replica node for a key. Clients
// increment that node's clock entry so that two concurrent updates of the
// same key produce an *identical* new clock — making the second put fail
// with "already written vector clock" (§II.B optimistic locking) rather
// than silently forking siblings.
type masterAware interface {
	MasterNode(key []byte) int32
}

func (c *Client) clockID(key []byte) int32 {
	if m, ok := c.store.(masterAware); ok {
		return m.MasterNode(key)
	}
	return c.nodeID
}

// StoreName returns the bound store's name.
func (c *Client) StoreName() string { return c.store.Name() }

// GetVersions returns all concurrent versions — the raw form of API method 1.
func (c *Client) GetVersions(key []byte) ([]*versioned.Versioned, error) {
	return c.store.Get(key, nil)
}

// Get returns the resolved value for key, or (nil, false, nil) if absent.
func (c *Client) Get(key []byte) (value []byte, ok bool, err error) {
	vs, err := c.store.Get(key, nil)
	if err != nil {
		return nil, false, err
	}
	v := c.resolver(vs)
	if v == nil {
		return nil, false, nil
	}
	return v.Value, true, nil
}

// GetVersioned returns the resolved versioned value (clock included), which
// a caller mutates and passes back to PutVersioned for optimistic locking.
func (c *Client) GetVersioned(key []byte) (*versioned.Versioned, error) {
	vs, err := c.store.Get(key, nil)
	if err != nil {
		return nil, err
	}
	return c.resolver(vs), nil
}

// Put writes value under a clock that dominates everything currently
// readable — the common blind-write path (API method 2 with the version
// fetched implicitly).
func (c *Client) Put(key, value []byte) error {
	vs, err := c.store.Get(key, nil)
	if err != nil {
		return fmt.Errorf("voldemort: pre-put read: %w", err)
	}
	v := versioned.New(nil)
	for _, old := range vs {
		v.Clock = v.Clock.Merge(old.Clock)
	}
	v.Value = value
	v.Clock = v.Clock.Incremented(c.clockID(key), c.now().UnixMilli())
	return c.store.Put(key, v, nil)
}

// PutVersioned writes an explicitly versioned value; the caller owns the
// clock (obtained from GetVersioned and incremented). Two concurrent writers
// race: one succeeds, the other receives versioned.ErrObsoleteVersion — the
// optimistic-lock signal described in §II.B.
func (c *Client) PutVersioned(key []byte, v *versioned.Versioned) error {
	return c.store.Put(key, v, nil)
}

// GetWithTransform runs a server-side transform during the get (API method
// 3), e.g. retrieving a sub-list without shipping the whole value.
func (c *Client) GetWithTransform(key []byte, tr Transform) ([]byte, bool, error) {
	vs, err := c.store.Get(key, &tr)
	if err != nil {
		return nil, false, err
	}
	v := c.resolver(vs)
	if v == nil {
		return nil, false, nil
	}
	return v.Value, true, nil
}

// PutWithTransform merges value into the stored value server-side (API
// method 4), e.g. appending to a list, saving a client round trip.
func (c *Client) PutWithTransform(key, value []byte, tr Transform) error {
	v := versioned.With(value, nil)
	v.Clock = v.Clock.Incremented(c.clockID(key), c.now().UnixMilli())
	return c.store.Put(key, v, &tr)
}

// Delete removes the key's current versions.
func (c *Client) Delete(key []byte) (bool, error) {
	vs, err := c.store.Get(key, nil)
	if err != nil {
		return false, err
	}
	if len(vs) == 0 {
		return false, nil
	}
	clock := vs[0].Clock
	for _, v := range vs[1:] {
		clock = clock.Merge(v.Clock)
	}
	return c.store.Delete(key, clock)
}

// ApplyUpdate is API method 5: the "read, modify, write if no change" loop
// for counters and similar. action sees the current resolved version (nil if
// absent) and returns the new value; on an optimistic-lock conflict the loop
// retries up to retries times.
func (c *Client) ApplyUpdate(key []byte, retries int, action UpdateAction) error {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		vs, err := c.store.Get(key, nil)
		if err != nil {
			return fmt.Errorf("voldemort: applyUpdate read: %w", err)
		}
		cur := c.resolver(vs)
		newValue, err := action(cur)
		if err != nil {
			return err
		}
		v := versioned.New(nil)
		for _, old := range vs {
			v.Clock = v.Clock.Merge(old.Clock)
		}
		v.Value = newValue
		v.Clock = v.Clock.Incremented(c.clockID(key), c.now().UnixMilli())
		err = c.store.Put(key, v, nil)
		if err == nil {
			return nil
		}
		if !occurredErr(err) {
			return err
		}
		lastErr = err // concurrent writer won; retry with fresh state
	}
	return fmt.Errorf("voldemort: applyUpdate exhausted %d retries: %w", retries, lastErr)
}
