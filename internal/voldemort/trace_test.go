package voldemort

import (
	"strings"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/ring"
	"datainfra/internal/trace"
	"datainfra/internal/versioned"
)

// startTraceServer spins up a one-node demo server with a memory store and
// returns (server, bound address).
func startTraceServer(t *testing.T) (*Server, string) {
	t.Helper()
	clus := cluster.Uniform("trace-test", 1, 8, 0)
	srv, err := NewServer(ServerConfig{NodeID: 0, Cluster: clus})
	if err != nil {
		t.Fatal(err)
	}
	def := (&cluster.StoreDef{
		Name: "t", Replication: 1, RequiredReads: 1, RequiredWrites: 1,
	}).WithDefaults()
	if err := srv.AddStore(def); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// TestTracePropagatesClientToStore asserts the acceptance criterion: a trace
// ID injected at the client edge is observable at the serving store.
func TestTracePropagatesClientToStore(t *testing.T) {
	srv, addr := startTraceServer(t)
	st := DialStore("t", addr, time.Second)
	defer st.Close()

	id := trace.NewID()
	st.SetTrace(id)
	v := versioned.New([]byte("v"))
	if err := st.Put([]byte("k"), v, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	if !srv.SawTrace(id) {
		t.Fatalf("server never saw trace %q; recent: %v", id, srv.RecentTraces())
	}
}

// TestTraceSurfacesInErrorStrings asserts server-side failures carry the
// trace ID back to the caller in the error text.
func TestTraceSurfacesInErrorStrings(t *testing.T) {
	_, addr := startTraceServer(t)
	st := DialStore("no-such-store", addr, time.Second)
	defer st.Close()

	id := trace.NewID()
	st.SetTrace(id)
	_, err := st.Get([]byte("k"), nil)
	if err == nil {
		t.Fatal("expected unknown-store error")
	}
	if !strings.Contains(err.Error(), "[trace="+id+"]") {
		t.Fatalf("error %q does not surface trace %q", err, id)
	}
}

// TestTraceWireOptional pins backward compatibility of the trailing trace
// field: requests without a trace decode to an empty one, requests with it
// round-trip.
func TestTraceWireOptional(t *testing.T) {
	without := (&request{Op: opGet, Store: "s", Key: []byte("k")}).encode()
	q, err := decodeRequest(without)
	if err != nil || q.Trace != "" {
		t.Fatalf("decode without trace: q=%+v err=%v", q, err)
	}
	with := (&request{Op: opPut, Store: "s", Key: []byte("k"), Trace: "abc123"}).encode()
	q, err = decodeRequest(with)
	if err != nil || q.Trace != "abc123" {
		t.Fatalf("decode with trace: q=%+v err=%v", q, err)
	}
}

// TestRoutedStoreForwardsTrace asserts SetTrace on a routed store reaches
// the socket stores underneath it.
func TestRoutedStoreForwardsTrace(t *testing.T) {
	srv, addr := startTraceServer(t)
	sock := DialStore("t", addr, time.Second)
	defer sock.Close()
	def := (&cluster.StoreDef{
		Name: "t", Replication: 1, RequiredReads: 1, RequiredWrites: 1,
	}).WithDefaults()
	strategy, err := ring.NewConsistent(srv.Cluster(), 1)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := NewRouted(RoutedConfig{
		Def:      def,
		Cluster:  srv.Cluster(),
		Strategy: strategy,
		Stores:   map[int]Store{0: sock},
	})
	if err != nil {
		t.Fatal(err)
	}
	id := trace.NewID()
	routed.SetTrace(id)
	v := versioned.New([]byte("v"))
	if err := routed.Put([]byte("k"), v, nil); err != nil {
		t.Fatal(err)
	}
	if !srv.SawTrace(id) {
		t.Fatalf("trace %q did not propagate through the routed store", id)
	}
}
