package voldemort

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"sync"

	"datainfra/internal/cluster"
	"datainfra/internal/ring"
	"datainfra/internal/rpc"
	"datainfra/internal/storage"
	"datainfra/internal/trace"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// Server is one Voldemort storage node: it hosts engines for each store,
// serves the binary socket protocol, and runs the administrative service
// (§II.B "Admin Service") that allows store addition/deletion and partition
// streaming for rebalancing — all without downtime.
type Server struct {
	nodeID     int
	dataDir    string
	syncEvery  int
	cacheBytes int64

	mu     sync.RWMutex
	clus   *cluster.Cluster
	stores map[string]*EngineStore
	defs   map[string]*cluster.StoreDef

	transforms *TransformRegistry
	ln         net.Listener
	conns      map[net.Conn]bool
	wg         sync.WaitGroup
	closed     bool

	traces *trace.Ring // trace IDs recently seen on the socket protocol
}

// ServerConfig configures a node.
type ServerConfig struct {
	NodeID     int
	Cluster    *cluster.Cluster
	DataDir    string // required for bitcask/readonly engines
	Transforms *TransformRegistry
	// SyncEvery is the bitcask fsync batching policy: 0 (the default) syncs
	// every write through the group-commit path, so an acknowledged put is on
	// disk before the ack — the contract the black-box kill -9 scenarios
	// verify. n > 0 flushes every n writes without an explicit sync,
	// trading the durability of the last n acks for throughput.
	SyncEvery int
	// CacheBytes, when > 0, puts a hot-set read cache of that byte
	// budget in front of every store's engine (write-through
	// invalidation; see internal/cache). Each store gets its own
	// budget.
	CacheBytes int64
}

// NewServer builds a node with no stores.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Cluster.NodeByID(cfg.NodeID) == nil {
		return nil, fmt.Errorf("voldemort: node %d not in cluster %q", cfg.NodeID, cfg.Cluster.Name)
	}
	tr := cfg.Transforms
	if tr == nil {
		tr = NewTransformRegistry()
	}
	return &Server{
		nodeID:     cfg.NodeID,
		dataDir:    cfg.DataDir,
		syncEvery:  cfg.SyncEvery,
		cacheBytes: cfg.CacheBytes,
		clus:       cfg.Cluster,
		stores:     make(map[string]*EngineStore),
		defs:       make(map[string]*cluster.StoreDef),
		conns:      make(map[net.Conn]bool),
		transforms: tr,
		traces:     trace.NewRing(64),
	}, nil
}

// RecentTraces returns the trace IDs recently observed on incoming
// requests, oldest first — the server end of trace propagation.
func (s *Server) RecentTraces() []string { return s.traces.Recent() }

// SawTrace reports whether the server recently served a request carrying id.
func (s *Server) SawTrace(id string) bool { return s.traces.Contains(id) }

// NodeID returns this server's node id.
func (s *Server) NodeID() int { return s.nodeID }

// Cluster returns the current topology metadata.
func (s *Server) Cluster() *cluster.Cluster {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clus
}

// AddStore creates the engine for def and begins serving it — privileged
// admin command, no downtime.
func (s *Server) AddStore(def *cluster.StoreDef) error {
	def = def.WithDefaults()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := def.Validate(len(s.clus.Nodes)); err != nil {
		return err
	}
	if _, exists := s.stores[def.Name]; exists {
		return fmt.Errorf("voldemort: store %q already exists on node %d", def.Name, s.nodeID)
	}
	var eng storage.Engine
	var err error
	switch def.Engine {
	case cluster.EngineMemory:
		eng = storage.NewMemory(def.Name)
	case cluster.EngineBitcask:
		eng, err = storage.OpenBitcask(def.Name, s.storeDir(def.Name), s.syncEvery)
	case cluster.EngineReadOnly:
		eng, err = storage.OpenReadOnly(def.Name, s.storeDir(def.Name))
	default:
		err = fmt.Errorf("voldemort: unknown engine %q", def.Engine)
	}
	if err != nil {
		return err
	}
	s.stores[def.Name] = NewEngineStore(eng, s.nodeID, s.transforms).EnableCache(s.cacheBytes)
	s.defs[def.Name] = def
	return nil
}

func (s *Server) storeDir(store string) string {
	return filepath.Join(s.dataDir, fmt.Sprintf("node-%d", s.nodeID), store)
}

// DeleteStore stops serving and closes the named store.
func (s *Server) DeleteStore(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stores[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStore, name)
	}
	delete(s.stores, name)
	delete(s.defs, name)
	return st.Close()
}

// LocalStore returns the engine-backed store for name (in-process access).
func (s *Server) LocalStore(name string) (*EngineStore, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.stores[name]
	return st, ok
}

// StoreNames lists the stores served by this node.
func (s *Server) StoreNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.stores))
	for name := range s.stores {
		out = append(out, name)
	}
	return out
}

// Listen starts serving the socket protocol on addr ("host:0" picks a free
// port). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			// One port, two protocols: multiplexed connections announce
			// themselves with the rpc magic; everything else (admin clients,
			// partition-streaming fetches) speaks the legacy lock-step frames.
			nc, muxed, err := rpc.Sniff(conn)
			if err != nil {
				return
			}
			if muxed {
				_ = rpc.ServeConn(nc, s.handleMux, rpc.ServeOptions{})
				return
			}
			s.serveConn(nc)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	// Per-connection frame buffers: dispatch fully consumes a request before
	// the next frame is read, and a response is written before the buffer is
	// reused, so steady-state request handling allocates no frame memory.
	var rb, wb []byte
	respond := func(resp *response) error {
		wb = appendFramed(wb[:0], resp.appendTo)
		_, err := conn.Write(wb)
		return err
	}
	for {
		frame, err := readFrameInto(conn, rb)
		if err != nil {
			return
		}
		rb = frame[:0]
		req, err := decodeRequest(frame)
		if err != nil {
			_ = respond(&response{Status: statusError, Message: err.Error()})
			return
		}
		mServerRequests.With(opName(req.Op)).Inc()
		if req.Trace != "" {
			s.traces.Add(req.Trace)
			trace.Logf(req.Trace, "voldemort node %d: %s store=%s keylen=%d",
				s.nodeID, opName(req.Op), req.Store, len(req.Key))
		}
		if req.Op == opFetchPartitions {
			if err := s.streamPartitions(conn, req); err != nil {
				return
			}
			continue
		}
		resp := s.dispatch(req)
		if resp.Status != statusOK && req.Trace != "" {
			// Surface the trace in the error string so the failing replica
			// can be found from the client-side error alone.
			resp.Message = "[trace=" + req.Trace + "] " + resp.Message
		}
		if err := respond(resp); err != nil {
			return
		}
	}
}

// handleMux serves one request arriving over a multiplexed connection. The
// mux payload is the legacy request encoding without its length prefix (the
// rpc frame carries the length), and the response payload likewise. Handlers
// run concurrently on the per-connection worker pool, so responses may be
// written out of order — the correlation id routes each to its caller.
// Partition streaming writes multiple raw frames and so stays legacy-only.
func (s *Server) handleMux(payload []byte) rpc.Response {
	req, err := decodeRequest(payload)
	if err != nil {
		return rpc.Response{Payload: (&response{Status: statusError, Message: err.Error()}).appendTo(nil)}
	}
	mServerRequests.With(opName(req.Op)).Inc()
	if req.Trace != "" {
		s.traces.Add(req.Trace)
		trace.Logf(req.Trace, "voldemort node %d: %s store=%s keylen=%d",
			s.nodeID, opName(req.Op), req.Store, len(req.Key))
	}
	var resp *response
	if req.Op == opFetchPartitions {
		resp = &response{Status: statusError,
			Message: "fetch-partitions streams frames and requires a dedicated legacy connection"}
	} else {
		resp = s.dispatch(req)
	}
	if resp.Status != statusOK && req.Trace != "" {
		resp.Message = "[trace=" + req.Trace + "] " + resp.Message
	}
	return rpc.Response{Payload: resp.appendTo(nil)}
}

func (s *Server) store(name string) (*EngineStore, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.stores[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStore, name)
	}
	return st, nil
}

func (s *Server) dispatch(req *request) *response {
	switch req.Op {
	case opPing:
		return &response{Status: statusOK}

	case opGet:
		st, err := s.store(req.Store)
		if err != nil {
			return errToResponse(err, nil)
		}
		var tr *Transform
		if req.TrName != "" {
			tr = &Transform{Name: req.TrName, Arg: req.TrArg}
		}
		vs, err := st.Get(req.Key, tr)
		if err != nil {
			return errToResponse(err, nil)
		}
		payload, err := encodeVersionSet(vs)
		return errToResponse(err, payload)

	case opGetAll:
		st, err := s.store(req.Store)
		if err != nil {
			return errToResponse(err, nil)
		}
		keys, err := decodeKeys(req.Body)
		if err != nil {
			return errToResponse(err, nil)
		}
		entries, err := st.GetAll(keys)
		if err != nil {
			return errToResponse(err, nil)
		}
		payload, err := encodeKeyedVersionSets(entries)
		return errToResponse(err, payload)

	case opPut:
		st, err := s.store(req.Store)
		if err != nil {
			return errToResponse(err, nil)
		}
		var v versioned.Versioned
		if err := v.UnmarshalBinary(req.Body); err != nil {
			return errToResponse(err, nil)
		}
		var tr *Transform
		if req.TrName != "" {
			tr = &Transform{Name: req.TrName, Arg: req.TrArg}
		}
		return errToResponse(st.Put(req.Key, &v, tr), nil)

	case opDelete:
		st, err := s.store(req.Store)
		if err != nil {
			return errToResponse(err, nil)
		}
		var clock *vclock.Clock
		if len(req.Body) > 0 {
			clock, err = vclock.Decode(req.Body)
			if err != nil {
				return errToResponse(err, nil)
			}
		}
		deleted, err := st.Delete(req.Key, clock)
		if err != nil {
			return errToResponse(err, nil)
		}
		payload := []byte{0}
		if deleted {
			payload[0] = 1
		}
		return &response{Status: statusOK, Payload: payload}

	case opAddStore:
		var def cluster.StoreDef
		if err := json.Unmarshal(req.Body, &def); err != nil {
			return errToResponse(err, nil)
		}
		return errToResponse(s.AddStore(&def), nil)

	case opDeleteStore:
		return errToResponse(s.DeleteStore(req.Store), nil)

	case opListStores:
		payload, err := json.Marshal(s.StoreNames())
		return errToResponse(err, payload)

	case opGetCluster:
		s.mu.RLock()
		payload, err := json.Marshal(s.clus)
		s.mu.RUnlock()
		return errToResponse(err, payload)

	case opUpdateCluster:
		var c cluster.Cluster
		if err := json.Unmarshal(req.Body, &c); err != nil {
			return errToResponse(err, nil)
		}
		s.mu.Lock()
		s.clus = &c
		s.mu.Unlock()
		return &response{Status: statusOK}

	case opDeletePartition:
		return errToResponse(s.deletePartition(req), nil)

	case opSwapReadOnly:
		return errToResponse(s.swapReadOnly(req.Store, req.Body, false), nil)

	case opRollbackRO:
		return errToResponse(s.swapReadOnly(req.Store, nil, true), nil)

	default:
		return &response{Status: statusError, Message: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// swapReadOnly swaps (or rolls back) the read-only engine behind a store —
// the Swap phase of Figure II.3, executed per node by the controller.
func (s *Server) swapReadOnly(store string, versionBytes []byte, rollback bool) error {
	st, err := s.store(store)
	if err != nil {
		return err
	}
	ro, ok := st.Engine().(*storage.ReadOnlyEngine)
	if !ok {
		return fmt.Errorf("voldemort: store %q is not read-only", store)
	}
	// The swap replaces the entire dataset behind the store, so any
	// cached version sets are stale wholesale.
	defer st.InvalidateCache()
	if rollback {
		return ro.Rollback()
	}
	v, err := strconv.Atoi(string(versionBytes))
	if err != nil {
		return fmt.Errorf("voldemort: bad swap version: %w", err)
	}
	return ro.Swap(v)
}

// ReadOnlyEngine returns the read-only engine behind store, if any.
func (s *Server) ReadOnlyEngine(store string) (*storage.ReadOnlyEngine, bool) {
	st, err := s.store(store)
	if err != nil {
		return nil, false
	}
	ro, ok := st.Engine().(*storage.ReadOnlyEngine)
	return ro, ok
}

// streamPartitions streams every entry whose primary partition is in the
// requested set: frames of (key, versionSet), terminated by an empty frame.
func (s *Server) streamPartitions(conn net.Conn, req *request) error {
	st, err := s.store(req.Store)
	if err != nil {
		return writeFrame(conn, nil) // empty terminator; client sees zero entries
	}
	var parts []int
	if err := json.Unmarshal(req.Body, &parts); err != nil {
		return writeFrame(conn, nil)
	}
	want := make(map[int]bool, len(parts))
	for _, p := range parts {
		want[p] = true
	}
	s.mu.RLock()
	numPartitions := s.clus.NumPartitions
	s.mu.RUnlock()

	var streamErr error
	err = st.Engine().Entries(func(key []byte, vs []*versioned.Versioned) bool {
		if !want[ring.Hash(key, numPartitions)] {
			return true
		}
		data, err := encodeVersionSet(vs)
		if err != nil {
			streamErr = err
			return false
		}
		var w wbuf
		w.bytes32(key)
		w.bytes32(data)
		if err := writeFrame(conn, w.b); err != nil {
			streamErr = err
			return false
		}
		return true
	})
	if err != nil && streamErr == nil {
		streamErr = err
	}
	if streamErr != nil {
		return streamErr
	}
	return writeFrame(conn, nil)
}

// deletePartition removes all keys with primary partitions in the given set
// (post-rebalance cleanup on the donor).
func (s *Server) deletePartition(req *request) error {
	st, err := s.store(req.Store)
	if err != nil {
		return err
	}
	var parts []int
	if err := json.Unmarshal(req.Body, &parts); err != nil {
		return err
	}
	want := make(map[int]bool, len(parts))
	for _, p := range parts {
		want[p] = true
	}
	s.mu.RLock()
	numPartitions := s.clus.NumPartitions
	s.mu.RUnlock()

	var keys [][]byte
	if err := st.Engine().Entries(func(key []byte, _ []*versioned.Versioned) bool {
		if want[ring.Hash(key, numPartitions)] {
			k := make([]byte, len(key))
			copy(k, key)
			keys = append(keys, k)
		}
		return true
	}); err != nil {
		return err
	}
	// Deletes went straight to the engine, bypassing the store's
	// write-through invalidation — flush the cache once at the end.
	defer st.InvalidateCache()
	for _, k := range keys {
		if _, err := st.Engine().Delete(k, nil); err != nil && !errors.Is(err, storage.ErrNoSuchKey) {
			return err
		}
	}
	return nil
}

// Close stops the listener and closes every store.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	stores := make([]*EngineStore, 0, len(s.stores))
	for _, st := range s.stores {
		stores = append(stores, st)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	var firstErr error
	for _, st := range stores {
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
