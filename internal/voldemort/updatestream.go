package voldemort

import (
	"sync"

	"datainfra/internal/databus"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// UpdateStreamStore implements the future-work item of §II.C: "an update
// stream to which consumers can listen". It wraps a Store and commits every
// successful mutation to a Databus transaction log, so downstream systems
// can subscribe to a Voldemort store exactly as they subscribe to a primary
// database.
type UpdateStreamStore struct {
	Inner  Store
	stream *databus.LogSource
	mu     sync.Mutex // serializes commit order with mutation order
}

// NewUpdateStream wraps inner, emitting change events to stream.
func NewUpdateStream(inner Store, stream *databus.LogSource) *UpdateStreamStore {
	return &UpdateStreamStore{Inner: inner, stream: stream}
}

// Stream returns the change log consumers attach relays to.
func (s *UpdateStreamStore) Stream() *databus.LogSource { return s.stream }

// Name delegates to the inner store.
func (s *UpdateStreamStore) Name() string { return s.Inner.Name() }

// Get delegates to the inner store.
func (s *UpdateStreamStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	return s.Inner.Get(key, tr)
}

// Put writes through and, on success, commits an upsert event carrying the
// final stored value.
func (s *UpdateStreamStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.Inner.Put(key, v, tr); err != nil {
		return err
	}
	// For transformed puts the stored value differs from the input; read the
	// resolved result so subscribers see what readers see.
	payload := v.Value
	if tr != nil {
		if vs, err := s.Inner.Get(key, nil); err == nil {
			if resolved := LWWResolver(vs); resolved != nil {
				payload = resolved.Value
			}
		}
	}
	s.stream.Commit(databus.Event{
		Source:  s.Name(),
		Op:      databus.OpUpsert,
		Key:     append([]byte(nil), key...),
		Payload: append([]byte(nil), payload...),
	})
	return nil
}

// Delete writes through and commits a delete event when something was
// removed.
func (s *UpdateStreamStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	deleted, err := s.Inner.Delete(key, clock)
	if err != nil || !deleted {
		return deleted, err
	}
	s.stream.Commit(databus.Event{
		Source: s.Name(),
		Op:     databus.OpDelete,
		Key:    append([]byte(nil), key...),
	})
	return true, nil
}

// Close delegates to the inner store.
func (s *UpdateStreamStore) Close() error { return s.Inner.Close() }
