package voldemort

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/failure"
	"datainfra/internal/ring"
	"datainfra/internal/storage"
	"datainfra/internal/versioned"
)

// testRig wires an in-process N-node routed store over memory engines with
// flaky wrappers for failure injection.
type testRig struct {
	clus    *cluster.Cluster
	def     *cluster.StoreDef
	flaky   map[int]*FlakyStore
	engines map[int]*EngineStore
	routed  *RoutedStore
	slop    *SlopPusher
}

func newRig(t *testing.T, nodes, partitions, n, r, w int, hinted bool) *testRig {
	t.Helper()
	clus := cluster.Uniform("rig", nodes, partitions, 0)
	def := (&cluster.StoreDef{
		Name: "test", Replication: n, RequiredReads: r, RequiredWrites: w,
		ReadRepair: true, HintedHandoff: hinted,
	}).WithDefaults()
	strategy, err := ring.NewConsistent(clus, n)
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{clus: clus, def: def,
		flaky:   make(map[int]*FlakyStore),
		engines: make(map[int]*EngineStore),
	}
	stores := make(map[int]Store)
	for _, node := range clus.Nodes {
		es := NewEngineStore(storage.NewMemory("test"), node.ID, nil)
		rig.engines[node.ID] = es
		fs := &FlakyStore{Inner: es}
		rig.flaky[node.ID] = fs
		stores[node.ID] = fs
	}
	if hinted {
		rig.slop = NewSlopPusher(func(node int, store string) (Store, bool) {
			s, ok := stores[node]
			return s, ok
		}, failure.AlwaysUp{}, 0)
	}
	routed, err := NewRouted(RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy,
		Stores: stores, Slop: rig.slop,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.routed = routed
	return rig
}

func TestRoutedPutGet(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	c := NewClient(rig.routed, nil, 100)
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s = (%q, %v, %v)", k, v, ok, err)
		}
	}
	// missing key
	_, ok, err := c.Get([]byte("missing"))
	if err != nil || ok {
		t.Fatalf("missing Get = (%v, %v)", ok, err)
	}
}

func TestRoutedReplicationFanout(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 3, false)
	c := NewClient(rig.routed, nil, 100)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// With N=W=3 every engine must hold the key.
	for id, es := range rig.engines {
		vs, err := es.Get([]byte("k"), nil)
		if err != nil || len(vs) != 1 {
			t.Fatalf("node %d missing replica: (%v, %v)", id, vs, err)
		}
	}
}

func TestRoutedToleratesFailuresWithinQuorum(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 2, false)
	c := NewClient(rig.routed, nil, 100)
	// one node down: W=2 of N=3 still satisfiable
	rig.flaky[0].SetFailing(true)
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatalf("put with 1 node down: %v", err)
		}
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("get with 1 node down: (%v, %v)", ok, err)
		}
	}
}

func TestRoutedFailsBelowWriteQuorum(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 3, false)
	c := NewClient(rig.routed, nil, 100)
	rig.flaky[1].SetFailing(true)
	err := c.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrInsufficientWrites) {
		t.Fatalf("err = %v, want ErrInsufficientWrites", err)
	}
}

func TestRoutedFailsBelowReadQuorum(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 3, 1, false)
	c := NewClient(rig.routed, nil, 100)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	rig.flaky[0].SetFailing(true)
	rig.flaky[1].SetFailing(true)
	rig.flaky[2].SetFailing(true)
	_, _, err := c.Get([]byte("k"))
	if !errors.Is(err, ErrInsufficientReads) {
		t.Fatalf("err = %v, want ErrInsufficientReads", err)
	}
}

func TestReadRepairHealsStaleReplica(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 2, 2, false)
	c := NewClient(rig.routed, nil, 100)
	key := []byte("repair-me")
	if err := c.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Find a replica node and wipe the key there, simulating a missed write.
	strategy, _ := ring.NewConsistent(rig.clus, 3)
	victim := strategy.NodeList(key)[2].ID
	if _, err := rig.engines[victim].Delete(key, nil); err != nil {
		t.Fatal(err)
	}
	vs, _ := rig.engines[victim].Get(key, nil)
	if len(vs) != 0 {
		t.Fatal("precondition failed: victim still has key")
	}
	// A quorum read triggers read repair. The victim may be a straggler
	// beyond the read quorum, in which case its repair lands asynchronously —
	// poll briefly instead of asserting instant convergence.
	if _, ok, err := c.Get(key); err != nil || !ok {
		t.Fatalf("Get = (%v, %v)", ok, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		vs, err := rig.engines[victim].Get(key, nil)
		if err == nil && len(vs) == 1 && string(vs[0].Value) == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read repair did not heal node %d: (%v, %v)", victim, vs, err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHintedHandoffDelivers(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 1, true)
	c := NewClient(rig.routed, nil, 100)
	key := []byte("hinted")
	strategy, _ := ring.NewConsistent(rig.clus, 3)
	victim := strategy.NodeList(key)[1].ID
	rig.flaky[victim].SetFailing(true)

	if err := c.Put(key, []byte("v")); err != nil {
		t.Fatalf("put with hinted handoff: %v", err)
	}
	// The failing replica may be a straggler beyond the write quorum, in
	// which case its hint is parked asynchronously as the result drains.
	deadline := time.Now().Add(2 * time.Second)
	for rig.slop.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no hint queued for failed replica")
		}
		time.Sleep(time.Millisecond)
	}
	// Victim recovers; pusher delivers.
	rig.flaky[victim].SetFailing(false)
	if n := rig.slop.DeliverOnce(); n == 0 {
		t.Fatal("DeliverOnce delivered nothing")
	}
	vs, err := rig.engines[victim].Get(key, nil)
	if err != nil || len(vs) != 1 {
		t.Fatalf("hint not applied on recovered node: (%v, %v)", vs, err)
	}
	if rig.slop.Pending() != 0 {
		t.Fatalf("%d hints still pending", rig.slop.Pending())
	}
}

func TestSlopKeepsHintWhileDown(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 1, true)
	c := NewClient(rig.routed, nil, 100)
	key := []byte("stuck")
	strategy, _ := ring.NewConsistent(rig.clus, 3)
	victim := strategy.NodeList(key)[1].ID
	rig.flaky[victim].SetFailing(true)
	if err := c.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Wait for the straggler's hint to be parked, then verify a failed
	// delivery round requeues rather than drops it.
	deadline := time.Now().Add(2 * time.Second)
	for rig.slop.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no hint queued for failed replica")
		}
		time.Sleep(time.Millisecond)
	}
	before := rig.slop.Pending()
	rig.slop.DeliverOnce() // still down: delivery fails, hint requeued
	if rig.slop.Pending() != before {
		t.Fatalf("hints lost while destination down: %d -> %d", before, rig.slop.Pending())
	}
}

func TestOptimisticLockConflict(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	c1 := NewClient(rig.routed, nil, 1)
	c2 := NewClient(rig.routed, nil, 2)
	if err := c1.Put([]byte("k"), []byte("base")); err != nil {
		t.Fatal(err)
	}
	// Both clients read the same version.
	v1, err := c1.GetVersioned([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c2.GetVersioned([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	// First writer wins.
	w1 := versioned.With([]byte("from-c1"), v1.Clock.Incremented(1, 10))
	if err := c1.PutVersioned([]byte("k"), w1); err != nil {
		t.Fatal(err)
	}
	// Second writer with the stale clock must see concurrency, not obsolete:
	// a sibling version is created (clock increments on different node ids
	// are concurrent). Writing with an *identical* clock fails as obsolete.
	stale := versioned.With([]byte("stale"), v2.Clock.Clone())
	err = c2.PutVersioned([]byte("k"), stale)
	if !errors.Is(err, versioned.ErrObsoleteVersion) {
		t.Fatalf("identical-clock rewrite err = %v, want ErrObsoleteVersion", err)
	}
}

func TestApplyUpdateCounter(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	key := []byte("counter")
	var wg sync.WaitGroup
	const writers, perWriter = 4, 25
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			c := NewClient(rig.routed, nil, 1000+wid)
			for i := 0; i < perWriter; i++ {
				err := c.ApplyUpdate(key, 50, func(cur *versioned.Versioned) ([]byte, error) {
					n := 0
					if cur != nil {
						if err := json.Unmarshal(cur.Value, &n); err != nil {
							return nil, err
						}
					}
					return json.Marshal(n + 1)
				})
				if err != nil {
					t.Errorf("applyUpdate: %v", err)
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	c := NewClient(rig.routed, nil, 1)
	v, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("final read: (%v, %v)", ok, err)
	}
	var n int
	if err := json.Unmarshal(v, &n); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("counter = %d, want %d (lost updates)", n, writers*perWriter)
	}
}

func TestTransformsListAppendAndSlice(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	c := NewClient(rig.routed, nil, 7)
	key := []byte("follows")
	for i := 0; i < 5; i++ {
		elem, _ := json.Marshal(fmt.Sprintf("company-%d", i))
		if err := c.PutWithTransform(key, elem, Transform{Name: "list.append"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	full, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("get list: (%v, %v)", ok, err)
	}
	var list []string
	if err := json.Unmarshal(full, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 5 || list[4] != "company-4" {
		t.Fatalf("list = %v", list)
	}
	// server-side sub-list
	sub, ok, err := c.GetWithTransform(key, Transform{Name: "list.slice", Arg: SliceArg(1, 3)})
	if err != nil || !ok {
		t.Fatalf("slice: (%v, %v)", ok, err)
	}
	var subList []string
	if err := json.Unmarshal(sub, &subList); err != nil {
		t.Fatal(err)
	}
	if len(subList) != 2 || subList[0] != "company-1" {
		t.Fatalf("sublist = %v", subList)
	}
}

func TestTransformUnknownName(t *testing.T) {
	rig := newRig(t, 3, 12, 2, 1, 2, false)
	c := NewClient(rig.routed, nil, 7)
	_, _, err := c.GetWithTransform([]byte("k"), Transform{Name: "nope"})
	if err == nil {
		t.Fatal("unknown get transform accepted")
	}
	err = c.PutWithTransform([]byte("k"), []byte(`"x"`), Transform{Name: "nope"})
	if err == nil {
		t.Fatal("unknown put transform accepted")
	}
}

func TestDeleteQuorum(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 2, 2, false)
	c := NewClient(rig.routed, nil, 1)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	deleted, err := c.Delete([]byte("k"))
	if err != nil || !deleted {
		t.Fatalf("Delete = (%v, %v)", deleted, err)
	}
	_, ok, err := c.Get([]byte("k"))
	if err != nil || ok {
		t.Fatalf("Get after delete = (%v, %v)", ok, err)
	}
	// deleting again is a no-op
	deleted, err = c.Delete([]byte("k"))
	if err != nil || deleted {
		t.Fatalf("second Delete = (%v, %v)", deleted, err)
	}
}

func TestConcurrentVersionsSurfacedAndResolved(t *testing.T) {
	// Write divergent versions directly to engines, then check the client
	// surfaces both via GetVersions and resolves via Get.
	rig := newRig(t, 3, 12, 3, 3, 1, false)
	key := []byte("diverged")
	strategy, _ := ring.NewConsistent(rig.clus, 3)
	nodes := strategy.NodeList(key)
	va := versioned.With([]byte("a"), versioned.New(nil).Clock.Incremented(1, 100))
	vb := versioned.With([]byte("b"), versioned.New(nil).Clock.Incremented(2, 200))
	if err := rig.engines[nodes[0].ID].Put(key, va, nil); err != nil {
		t.Fatal(err)
	}
	if err := rig.engines[nodes[1].ID].Put(key, vb, nil); err != nil {
		t.Fatal(err)
	}
	c := NewClient(rig.routed, nil, 1)
	vs, err := c.GetVersions(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("GetVersions returned %d versions, want 2 concurrent", len(vs))
	}
	v, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("resolved Get = (%v, %v)", ok, err)
	}
	if string(v) != "b" { // LWW: timestamp 200 wins
		t.Fatalf("LWW resolved to %q, want b", v)
	}
}

func TestZoneRoutedStore(t *testing.T) {
	clus := cluster.UniformZoned("zones", 6, 24, 2, 9100)
	def := (&cluster.StoreDef{
		// R+W > N so reads are guaranteed to observe the preceding write.
		Name: "ztest", Replication: 3, RequiredReads: 2, RequiredWrites: 2,
		ZoneCountWrites: 2,
	}).WithDefaults()
	strategy, err := ring.NewZoned(clus, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	stores := make(map[int]Store)
	for _, n := range clus.Nodes {
		stores[n.ID] = NewEngineStore(storage.NewMemory("ztest"), n.ID, nil)
	}
	routed, err := NewRouted(RoutedConfig{Def: def, Cluster: clus, Strategy: strategy, Stores: stores})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(routed, nil, 1)
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("zk%d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatalf("zoned put: %v", err)
		}
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("zoned get: (%v, %v)", ok, err)
		}
	}
	// Verify replicas landed in both zones.
	key := []byte("zk0")
	zonesHit := map[int]bool{}
	for _, n := range clus.Nodes {
		if vs, _ := stores[n.ID].Get(key, nil); len(vs) > 0 {
			zonesHit[n.ZoneID] = true
		}
	}
	if len(zonesHit) < 2 {
		t.Fatalf("replicas only in zones %v, want both", zonesHit)
	}
}

func BenchmarkRoutedPut(b *testing.B) {
	clus := cluster.Uniform("bench", 3, 24, 0)
	def := (&cluster.StoreDef{Name: "b", Replication: 2, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	strategy, _ := ring.NewConsistent(clus, 2)
	stores := make(map[int]Store)
	for _, n := range clus.Nodes {
		stores[n.ID] = NewEngineStore(storage.NewMemory("b"), n.ID, nil)
	}
	routed, _ := NewRouted(RoutedConfig{Def: def, Cluster: clus, Strategy: strategy, Stores: stores})
	c := NewClient(routed, nil, 1)
	val := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}
