package voldemort

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"datainfra/internal/ring"
	"datainfra/internal/storage"
	"datainfra/internal/versioned"
)

// countingEngine wraps a storage.Engine and counts Get calls — the
// probe for "did the cache actually absorb this read".
type countingEngine struct {
	storage.Engine
	gets atomic.Int64
}

func (e *countingEngine) Get(key []byte) ([]*versioned.Versioned, error) {
	e.gets.Add(1)
	return e.Engine.Get(key)
}

func newCachedStore(t *testing.T, maxBytes int64) (*EngineStore, *countingEngine) {
	t.Helper()
	eng := &countingEngine{Engine: storage.NewMemory("cached")}
	es := NewEngineStore(eng, 0, nil).EnableCache(maxBytes)
	return es, eng
}

func putRaw(t *testing.T, es *EngineStore, key, val string, incs int) {
	t.Helper()
	v := versioned.New([]byte(val))
	for i := 0; i < incs; i++ {
		v.Clock.Increment(0, int64(i+1))
	}
	if err := es.Put([]byte(key), v, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStoreCacheServesRepeatReads(t *testing.T) {
	es, eng := newCachedStore(t, 1<<20)
	putRaw(t, es, "k1", "v1", 1)

	for i := 0; i < 10; i++ {
		vs, err := es.Get([]byte("k1"), nil)
		if err != nil || len(vs) != 1 || string(vs[0].Value) != "v1" {
			t.Fatalf("Get = %v, %v", vs, err)
		}
	}
	if n := eng.gets.Load(); n != 1 {
		t.Fatalf("engine saw %d gets, want 1 (cache miss only)", n)
	}
	st := es.Cache().Stats()
	if st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineStoreCacheWriteThroughInvalidation(t *testing.T) {
	es, _ := newCachedStore(t, 1<<20)
	putRaw(t, es, "k1", "old", 1)
	if vs, _ := es.Get([]byte("k1"), nil); string(vs[0].Value) != "old" {
		t.Fatal("seed read failed")
	}
	// Overwrite with a dominating clock; the cached entry must go.
	putRaw(t, es, "k1", "new", 3)
	vs, err := es.Get([]byte("k1"), nil)
	if err != nil || len(vs) != 1 || string(vs[0].Value) != "new" {
		t.Fatalf("post-put Get = %v, %v", vs, err)
	}

	// Delete invalidates too.
	if _, err := es.Delete([]byte("k1"), vs[0].Clock); err != nil {
		t.Fatal(err)
	}
	if vs, err := es.Get([]byte("k1"), nil); err != nil || len(vs) != 0 {
		t.Fatalf("post-delete Get = %v, %v", vs, err)
	}
}

func TestEngineStoreCacheNegativeEntry(t *testing.T) {
	es, eng := newCachedStore(t, 1<<20)
	for i := 0; i < 5; i++ {
		if vs, err := es.Get([]byte("ghost"), nil); err != nil || len(vs) != 0 {
			t.Fatalf("Get = %v, %v", vs, err)
		}
	}
	if n := eng.gets.Load(); n != 1 {
		t.Fatalf("engine saw %d gets for a missing key, want 1", n)
	}
	// The key coming into existence must invalidate the negative entry.
	putRaw(t, es, "ghost", "real", 1)
	if vs, _ := es.Get([]byte("ghost"), nil); len(vs) != 1 || string(vs[0].Value) != "real" {
		t.Fatal("negative entry shadowed a created key")
	}
}

func TestEngineStoreCachedTransformReads(t *testing.T) {
	eng := &countingEngine{Engine: storage.NewMemory("rng")}
	es := NewEngineStore(eng, 0, nil).EnableCache(1 << 20)
	putRaw(t, es, "row", "abcdef", 1)
	// Transforms are applied on top of the cached raw versions and
	// allocate fresh slices, so cached values stay immutable.
	tr := &Transform{Name: "bytes.range", Arg: SliceArg(2, 4)}
	for i := 0; i < 3; i++ {
		vs, err := es.Get([]byte("row"), tr)
		if err != nil || len(vs) != 1 || string(vs[0].Value) != "cd" {
			t.Fatalf("transform Get = %v, %v", vs, err)
		}
	}
	raw, err := es.Get([]byte("row"), nil)
	if err != nil || string(raw[0].Value) != "abcdef" {
		t.Fatalf("raw Get after transforms = %v, %v", raw, err)
	}
	if n := eng.gets.Load(); n != 1 {
		t.Fatalf("engine saw %d gets, want 1", n)
	}
}

func TestEngineStoreGetAllPartialHits(t *testing.T) {
	es, eng := newCachedStore(t, 1<<20)
	for i := 0; i < 10; i++ {
		putRaw(t, es, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), 1)
	}
	// Prime half the keys through single-key reads.
	for i := 0; i < 10; i += 2 {
		if _, err := es.Get([]byte(fmt.Sprintf("k%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.gets.Store(0)
	keys := make([][]byte, 0, 11)
	for i := 0; i < 10; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%d", i)))
	}
	keys = append(keys, []byte("absent"))
	got, err := es.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("GetAll returned %d entries, want 10", len(got))
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if string(got[k][0].Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q", k, got[k][0].Value)
		}
	}
	// Only the 5 unprimed keys + the absent key hit the engine.
	if n := eng.gets.Load(); n != 6 {
		t.Fatalf("engine saw %d gets, want 6 (misses only)", n)
	}
	// A second pass is fully resident, including the negative entry.
	eng.gets.Store(0)
	if _, err := es.GetAll(keys); err != nil {
		t.Fatal(err)
	}
	if n := eng.gets.Load(); n != 0 {
		t.Fatalf("second GetAll saw %d engine gets, want 0", n)
	}
}

func TestEngineStoreGetAllDupKeysSingleFetch(t *testing.T) {
	es, eng := newCachedStore(t, 1<<20)
	putRaw(t, es, "dup", "v", 1)
	keys := [][]byte{[]byte("dup"), []byte("dup"), []byte("dup")}
	got, err := es.GetAll(keys)
	if err != nil || len(got) != 1 {
		t.Fatalf("GetAll = %v, %v", got, err)
	}
	if n := eng.gets.Load(); n != 1 {
		t.Fatalf("engine saw %d gets for one unique key, want 1", n)
	}
}

// countingStore wraps a Store and counts Get fan-outs — the probe for
// the RoutedStore.GetAll dedup regression.
type countingStore struct {
	Store
	gets atomic.Int64
}

func (s *countingStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	s.gets.Add(1)
	return s.Store.Get(key, tr)
}

func (s *countingStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	return s.Store.Put(key, v, tr)
}

func TestRoutedGetAllDeduplicatesKeys(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 2, 2, false)
	counters := make([]*countingStore, 0, 3)
	stores := make(map[int]Store, 3)
	for id, es := range rig.engines {
		cs := &countingStore{Store: es}
		counters = append(counters, cs)
		stores[id] = cs
	}
	strategy, err := ring.NewConsistent(rig.clus, rig.def.Replication)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := NewRouted(RoutedConfig{
		Def: rig.def, Cluster: rig.clus, Strategy: strategy, Stores: stores,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(routed, nil, 1)
	if err := c.Put([]byte("feed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var before int64
	for _, cs := range counters {
		before += cs.gets.Load()
	}
	// The same key 50 times must cost exactly one quorum read.
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte("feed")
	}
	got, err := routed.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got["feed"]) == 0 {
		t.Fatalf("GetAll = %v", got)
	}
	var after int64
	for _, cs := range counters {
		after += cs.gets.Load()
	}
	// One quorum read touches at most Replication backends (reads fan
	// out to all replicas; R acks complete it, stragglers may still
	// land). 50 duplicated keys must NOT multiply that.
	if n := after - before; n > int64(rig.def.Replication) {
		t.Fatalf("duplicated keys cost %d backend gets, want <= %d", n, rig.def.Replication)
	}
	if !bytes.Equal(got["feed"][0].Value, []byte("v")) {
		t.Fatalf("value = %q", got["feed"][0].Value)
	}
}

func TestServerAdminPathsFlushCache(t *testing.T) {
	es, _ := newCachedStore(t, 1<<20)
	putRaw(t, es, "k", "v", 1)
	if _, err := es.Get([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	// Simulate an admin path mutating the engine directly (as
	// deletePartition does), then flushing.
	if _, err := es.Engine().Delete([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	es.InvalidateCache()
	if vs, err := es.Get([]byte("k"), nil); err != nil || len(vs) != 0 {
		t.Fatalf("Get after flush = %v, %v", vs, err)
	}
}
