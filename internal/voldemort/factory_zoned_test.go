package voldemort

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/cluster"
)

// TestFactoryZonedStoreOverSockets drives the multi-datacenter client stack
// end to end: socket servers in two zones, a zoned routing strategy picked
// automatically from the store definition's zone-count requirements.
func TestFactoryZonedStoreOverSockets(t *testing.T) {
	clus := cluster.UniformZoned("zsock", 4, 16, 2, 0)
	def := (&cluster.StoreDef{
		Name: "zs", Replication: 2, RequiredReads: 1, RequiredWrites: 2,
		ZoneCountWrites: 2,
	}).WithDefaults()

	servers := make([]*Server, 4)
	for i := range servers {
		srv, err := NewServer(ServerConfig{NodeID: i, Cluster: clus, DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var port int
		fmt.Sscanf(addr[len("127.0.0.1:"):], "%d", &port)
		clus.NodeByID(i).Port = port
		if err := srv.AddStore(def); err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})

	f := NewClientFactory(clus, time.Second)
	defer f.Close()
	c, err := f.Client(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("zk%d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatalf("zoned socket put: %v", err)
		}
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("zoned socket get: (%v, %v)", ok, err)
		}
	}
	// verify the replicas really span both zones on the servers
	key := []byte("zk0")
	zones := map[int]bool{}
	for _, srv := range servers {
		es, ok := srv.LocalStore("zs")
		if !ok {
			continue
		}
		if vs, _ := es.Get(key, nil); len(vs) > 0 {
			zones[clus.NodeByID(srv.NodeID()).ZoneID] = true
		}
	}
	if len(zones) != 2 {
		t.Fatalf("replicas span %d zones, want 2", len(zones))
	}
}
