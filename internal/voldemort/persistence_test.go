package voldemort

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/cluster"
)

// TestBitcaskServerSurvivesRestart drives the durable path end to end: a
// socket server over bitcask engines is killed and restarted on the same
// data directory; every committed write must still be there.
func TestBitcaskServerSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	clus := cluster.Uniform("dur", 1, 4, 0)
	def := (&cluster.StoreDef{
		Name: "dur", Engine: cluster.EngineBitcask,
		Replication: 1, RequiredReads: 1, RequiredWrites: 1,
	}).WithDefaults()

	boot := func() (*Server, string) {
		srv, err := NewServer(ServerConfig{NodeID: 0, Cluster: clus, DataDir: dataDir})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.AddStore(def); err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return srv, addr
	}

	srv, addr := boot()
	ss := DialStore("dur", addr, time.Second)
	c := NewClient(ss, nil, 1)
	const keys = 100
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// a few overwrites and deletes for log-structure coverage
	for i := 0; i < 10; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("updated")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Delete([]byte("k99")); err != nil {
		t.Fatal(err)
	}
	ss.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, addr2 := boot()
	defer srv2.Close()
	ss2 := DialStore("dur", addr2, time.Second)
	defer ss2.Close()
	c2 := NewClient(ss2, nil, 1)
	for i := 0; i < 10; i++ {
		v, ok, err := c2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(v) != "updated" {
			t.Fatalf("k%d after restart = (%q, %v, %v)", i, v, ok, err)
		}
	}
	for i := 10; i < 99; i++ {
		v, ok, err := c2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after restart = (%q, %v, %v)", i, v, ok, err)
		}
	}
	if _, ok, _ := c2.Get([]byte("k99")); ok {
		t.Fatal("deleted key resurrected by restart")
	}
	// and it keeps accepting writes
	if err := c2.Put([]byte("post-restart"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
}
