package voldemort

import (
	"sync"

	"datainfra/internal/cache"
	"datainfra/internal/versioned"
)

// MultiGetter is the optional batched-read extension of Store. Batching
// matters on the socket path (one round trip for many keys) and for feed
// rendering patterns like Company Follow, which resolve many small lists at
// once.
type MultiGetter interface {
	GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error)
}

// GetAll fetches many keys through s, using its native batched path when
// available and falling back to per-key gets otherwise. Missing keys are
// absent from the result map.
func GetAll(s Store, keys [][]byte) (map[string][]*versioned.Versioned, error) {
	if mg, ok := s.(MultiGetter); ok {
		return mg.GetAll(keys)
	}
	out := make(map[string][]*versioned.Versioned, len(keys))
	for _, k := range keys {
		vs, err := s.Get(k, nil)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			out[string(k)] = vs
		}
	}
	return out, nil
}

// GetAll implements MultiGetter on the engine store. With a cache
// enabled it serves partial hits from memory and touches the engine
// only for the misses, installing each fetched set under an
// invalidation-fenced reservation.
func (s *EngineStore) GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error) {
	out := make(map[string][]*versioned.Versioned, len(keys))
	if s.cache == nil {
		for _, k := range keys {
			vs, err := s.engine.Get(k)
			if err != nil {
				return nil, err
			}
			if len(vs) > 0 {
				out[string(k)] = vs
			}
		}
		return out, nil
	}
	type pending struct {
		key []byte
		tok cache.Token[[]*versioned.Versioned]
	}
	var misses []pending
	var missSet map[string]struct{}
	for _, k := range keys {
		if _, dup := out[string(k)]; dup {
			continue
		}
		if _, dup := missSet[string(k)]; dup {
			continue
		}
		if vs, ok := s.cache.Get(k); ok {
			out[string(k)] = vs
			continue
		}
		// Reserve before the engine read so a concurrent Put/Delete
		// fences the install, exactly as on the single-key path.
		misses = append(misses, pending{key: k, tok: s.cache.Reserve(k)})
		if missSet == nil {
			missSet = make(map[string]struct{}, len(keys))
		}
		missSet[string(k)] = struct{}{}
	}
	for i, p := range misses {
		vs, err := s.engine.Get(p.key)
		if err != nil {
			for _, rest := range misses[i:] {
				rest.tok.Release()
			}
			return nil, err
		}
		p.tok.Commit(vs)
		out[string(p.key)] = vs
	}
	// Missing keys cached their empty set above but are absent from the
	// result map by contract.
	for k, vs := range out {
		if len(vs) == 0 {
			delete(out, k)
		}
	}
	return out, nil
}

// GetAll implements MultiGetter over the wire: one request, one response.
func (s *SocketStore) GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error) {
	resp, err := s.call(&request{Op: opGetAll, Store: s.storeName, Body: encodeKeys(keys)})
	if err != nil {
		return nil, err
	}
	if err := resp.err(); err != nil {
		return nil, err
	}
	return decodeKeyedVersionSets(resp.Payload)
}

// GetAll implements MultiGetter on the routed store: keys resolve through
// their own quorums concurrently. Repeated keys in one request are
// deduplicated before the fan-out — each unique key costs exactly one
// quorum read no matter how often it appears in the batch.
func (s *RoutedStore) GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error) {
	unique := keys
	if len(keys) > 1 {
		seen := make(map[string]struct{}, len(keys))
		unique = make([][]byte, 0, len(keys))
		for _, k := range keys {
			if _, dup := seen[string(k)]; dup {
				continue
			}
			seen[string(k)] = struct{}{}
			unique = append(unique, k)
		}
	}
	type result struct {
		key string
		vs  []*versioned.Versioned
		err error
	}
	ch := make(chan result, len(unique))
	var wg sync.WaitGroup
	// Acquire the semaphore BEFORE spawning: a 10k-key batch must never
	// materialize 10k goroutines that all sit blocked on the semaphore —
	// the bound has to hold on goroutines, not just on active quorum reads.
	sem := make(chan struct{}, 16)
	for _, k := range unique {
		sem <- struct{}{}
		wg.Add(1)
		go func(k []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			vs, err := s.Get(k, nil)
			ch <- result{key: string(k), vs: vs, err: err}
		}(k)
	}
	wg.Wait()
	close(ch)
	out := make(map[string][]*versioned.Versioned, len(keys))
	for r := range ch {
		if r.err != nil {
			return nil, r.err
		}
		if len(r.vs) > 0 {
			out[r.key] = r.vs
		}
	}
	return out, nil
}

// GetAll resolves many keys to values through the client's resolver.
func (c *Client) GetAll(keys [][]byte) (map[string][]byte, error) {
	raw, err := GetAll(c.store, keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(raw))
	for k, vs := range raw {
		if v := c.resolver(vs); v != nil {
			out[k] = v.Value
		}
	}
	return out, nil
}
