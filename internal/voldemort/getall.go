package voldemort

import (
	"sync"

	"datainfra/internal/versioned"
)

// MultiGetter is the optional batched-read extension of Store. Batching
// matters on the socket path (one round trip for many keys) and for feed
// rendering patterns like Company Follow, which resolve many small lists at
// once.
type MultiGetter interface {
	GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error)
}

// GetAll fetches many keys through s, using its native batched path when
// available and falling back to per-key gets otherwise. Missing keys are
// absent from the result map.
func GetAll(s Store, keys [][]byte) (map[string][]*versioned.Versioned, error) {
	if mg, ok := s.(MultiGetter); ok {
		return mg.GetAll(keys)
	}
	out := make(map[string][]*versioned.Versioned, len(keys))
	for _, k := range keys {
		vs, err := s.Get(k, nil)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			out[string(k)] = vs
		}
	}
	return out, nil
}

// GetAll implements MultiGetter on the engine store.
func (s *EngineStore) GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error) {
	out := make(map[string][]*versioned.Versioned, len(keys))
	for _, k := range keys {
		vs, err := s.engine.Get(k)
		if err != nil {
			return nil, err
		}
		if len(vs) > 0 {
			out[string(k)] = vs
		}
	}
	return out, nil
}

// GetAll implements MultiGetter over the wire: one request, one response.
func (s *SocketStore) GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error) {
	resp, err := s.call(&request{Op: opGetAll, Store: s.storeName, Body: encodeKeys(keys)})
	if err != nil {
		return nil, err
	}
	if err := resp.err(); err != nil {
		return nil, err
	}
	return decodeKeyedVersionSets(resp.Payload)
}

// GetAll implements MultiGetter on the routed store: keys resolve through
// their own quorums concurrently.
func (s *RoutedStore) GetAll(keys [][]byte) (map[string][]*versioned.Versioned, error) {
	type result struct {
		key string
		vs  []*versioned.Versioned
		err error
	}
	ch := make(chan result, len(keys))
	var wg sync.WaitGroup
	// Acquire the semaphore BEFORE spawning: a 10k-key batch must never
	// materialize 10k goroutines that all sit blocked on the semaphore —
	// the bound has to hold on goroutines, not just on active quorum reads.
	sem := make(chan struct{}, 16)
	for _, k := range keys {
		sem <- struct{}{}
		wg.Add(1)
		go func(k []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			vs, err := s.Get(k, nil)
			ch <- result{key: string(k), vs: vs, err: err}
		}(k)
	}
	wg.Wait()
	close(ch)
	out := make(map[string][]*versioned.Versioned, len(keys))
	for r := range ch {
		if r.err != nil {
			return nil, r.err
		}
		if len(r.vs) > 0 {
			out[r.key] = r.vs
		}
	}
	return out, nil
}

// GetAll resolves many keys to values through the client's resolver.
func (c *Client) GetAll(keys [][]byte) (map[string][]byte, error) {
	raw, err := GetAll(c.store, keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(raw))
	for k, vs := range raw {
		if v := c.resolver(vs); v != nil {
			out[k] = v.Value
		}
	}
	return out, nil
}
