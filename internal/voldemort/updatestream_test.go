package voldemort

import (
	"testing"
	"time"

	"datainfra/internal/databus"
	"datainfra/internal/storage"
)

func TestUpdateStreamEmitsChanges(t *testing.T) {
	stream := databus.NewLogSource()
	us := NewUpdateStream(NewEngineStore(storage.NewMemory("follows"), 0, nil), stream)
	c := NewClient(us, nil, 1)

	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	txns, err := stream.Pull(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 3 {
		t.Fatalf("stream has %d txns, want 3", len(txns))
	}
	if txns[0].Events[0].Op != databus.OpUpsert || string(txns[0].Events[0].Payload) != "v1" {
		t.Fatalf("first event = %+v", txns[0].Events[0])
	}
	if txns[1].Events[0].Op != databus.OpUpsert || string(txns[1].Events[0].Payload) != "v2" {
		t.Fatalf("second event = %+v", txns[1].Events[0])
	}
	if txns[2].Events[0].Op != databus.OpDelete {
		t.Fatalf("third event = %+v", txns[2].Events[0])
	}
}

func TestUpdateStreamSkipsFailedWrites(t *testing.T) {
	stream := databus.NewLogSource()
	us := NewUpdateStream(NewEngineStore(storage.NewMemory("s"), 0, nil), stream)
	c := NewClient(us, nil, 1)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// an obsolete put must not emit an event
	stale, err := us.Get([]byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = stale
	v := stale[0].Clone()
	if err := us.Put([]byte("k"), v, nil); err == nil {
		t.Fatal("stale put accepted")
	}
	// deleting a missing key must not emit
	if _, err := c.Delete([]byte("missing")); err != nil {
		t.Fatal(err)
	}
	if stream.Len() != 1 {
		t.Fatalf("stream has %d txns, want 1", stream.Len())
	}
}

func TestUpdateStreamTransformedPutEmitsResolvedValue(t *testing.T) {
	stream := databus.NewLogSource()
	us := NewUpdateStream(NewEngineStore(storage.NewMemory("s"), 0, nil), stream)
	c := NewClient(us, nil, 1)
	if err := c.PutWithTransform([]byte("list"), []byte(`"a"`), Transform{Name: "list.append"}); err != nil {
		t.Fatal(err)
	}
	if err := c.PutWithTransform([]byte("list"), []byte(`"b"`), Transform{Name: "list.append"}); err != nil {
		t.Fatal(err)
	}
	txns, _ := stream.Pull(0, 10)
	if len(txns) != 2 {
		t.Fatalf("%d txns", len(txns))
	}
	// subscribers see the merged list, not the appended element
	if got := string(txns[1].Events[0].Payload); got != `["a","b"]` {
		t.Fatalf("second event payload = %s", got)
	}
}

func TestUpdateStreamFeedsDownstreamConsumer(t *testing.T) {
	// End to end: Voldemort update stream -> Databus relay -> consumer,
	// exactly how a derived system would subscribe to a Voldemort store.
	stream := databus.NewLogSource()
	us := NewUpdateStream(NewEngineStore(storage.NewMemory("s"), 0, nil), stream)
	c := NewClient(us, nil, 1)
	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	relay.AttachSource(stream, time.Millisecond)

	seen := map[string]string{}
	dc, err := databus.NewClient(databus.ClientConfig{
		Relay: relay,
		Consumer: databus.ConsumerFuncs{Event: func(e databus.Event) error {
			if e.Op == databus.OpDelete {
				delete(seen, string(e.Key))
			} else {
				seen[string(e.Key)] = string(e.Payload)
			}
			return nil
		}},
		PollExpiry: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Put([]byte("a"), []byte("1"))
	c.Put([]byte("b"), []byte("2"))
	c.Delete([]byte("a"))

	deadline := time.Now().Add(3 * time.Second)
	for dc.SCN() < stream.LastSCN() {
		if time.Now().After(deadline) {
			t.Fatalf("consumer lagged at SCN %d of %d", dc.SCN(), stream.LastSCN())
		}
		if _, err := dc.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 1 || seen["b"] != "2" {
		t.Fatalf("derived state = %v", seen)
	}
}
