package voldemort

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestPropQuorumReadsSeeCommittedWrites checks the core Dynamo invariant the
// paper's N/R/W configuration relies on: with R+W > N, a successful read
// observes the latest successful write — even while individual nodes suffer
// transient failures (at most one at a time, so quorums stay satisfiable).
func TestPropQuorumReadsSeeCommittedWrites(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rig := newRig(t, 3, 12, 3, 2, 2, false) // N=3, R=2, W=2: R+W > N
		c := NewClient(rig.routed, nil, 1)
		key := []byte("invariant")
		lastCommitted := ""
		for op := 0; op < 60; op++ {
			// Flip at most one node down.
			down := r.Intn(4) // 3 == everyone up
			for id := 0; id < 3; id++ {
				rig.flaky[id].SetFailing(id == down)
			}
			switch r.Intn(2) {
			case 0:
				val := fmt.Sprintf("v%d", op)
				if err := c.Put(key, []byte(val)); err == nil {
					lastCommitted = val
				} else {
					// Failed writes may or may not have reached some
					// replicas; the committed value is now ambiguous between
					// old and new. Re-read to resolve what the system chose.
					if v, ok, rerr := c.Get(key); rerr == nil && ok {
						lastCommitted = string(v)
					}
				}
			case 1:
				v, ok, err := c.Get(key)
				if err != nil {
					continue // quorum unavailable this round; not a violation
				}
				if lastCommitted == "" {
					continue
				}
				if !ok || string(v) != lastCommitted {
					t.Logf("seed %d op %d: read %q, committed %q", seed, op, v, lastCommitted)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropReadRepairConverges: after arbitrary single-node outages during
// writes, turning every node back on and issuing quorum reads drives all
// replicas to the same latest value.
func TestPropReadRepairConverges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rig := newRig(t, 3, 12, 3, 2, 2, false)
		c := NewClient(rig.routed, nil, 1)
		key := []byte("converge")
		var last string
		for op := 0; op < 30; op++ {
			down := r.Intn(4)
			for id := 0; id < 3; id++ {
				rig.flaky[id].SetFailing(id == down)
			}
			val := fmt.Sprintf("v%d", op)
			if err := c.Put(key, []byte(val)); err == nil {
				last = val
			}
		}
		// Heal the cluster and read repeatedly: read repair must propagate
		// the winning version everywhere. Straggler replicas beyond the read
		// quorum are repaired asynchronously, so poll until convergence.
		for id := 0; id < 3; id++ {
			rig.flaky[id].SetFailing(false)
		}
		if last == "" {
			return true
		}
		converged := func() bool {
			// Every replica holding the key must hold the winning value.
			for _, es := range rig.engines {
				vs, err := es.Get(key, nil)
				if err != nil || len(vs) == 0 {
					continue
				}
				found := false
				for _, v := range vs {
					if string(v.Value) == last {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, _, err := c.Get(key); err != nil {
				return false
			}
			if converged() {
				return true
			}
			if time.Now().After(deadline) {
				t.Logf("seed %d: replicas did not converge on %q", seed, last)
				return false
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
