package voldemort

import (
	"net"
	"testing"
	"time"
)

// TestSocketStorePoolBounded proves the idle-connection cap: returning more
// connections than maxIdleConns keeps exactly maxIdleConns and closes the
// overflow, so a burst cannot pin fds forever.
func TestSocketStorePoolBounded(t *testing.T) {
	s := DialStore("s", "127.0.0.1:0", time.Second)
	defer s.Close()

	var client, server []net.Conn
	for i := 0; i < maxIdleConns+3; i++ {
		c, sv := net.Pipe()
		client = append(client, c)
		server = append(server, sv)
		s.putConn(c)
	}
	s.mu.Lock()
	pooled := len(s.conns)
	s.mu.Unlock()
	if pooled != maxIdleConns {
		t.Fatalf("pooled %d idle conns, want %d", pooled, maxIdleConns)
	}
	// The overflow connections must have been closed: their peer reads
	// should fail immediately rather than block.
	for i := maxIdleConns; i < len(server); i++ {
		sv := server[i]
		sv.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := sv.Read(make([]byte, 1)); err == nil {
			t.Fatalf("overflow conn %d still open after putConn", i)
		}
	}
	for _, c := range client {
		c.Close()
	}
	for _, sv := range server {
		sv.Close()
	}
}
