package voldemort

import (
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/versioned"
)

// Admin is the client for a node's administrative service (§II.B): add and
// delete stores, fetch/delete partition data, update topology metadata and
// coordinate read-only swaps — all without downtime.
type Admin struct {
	addr    string
	timeout time.Duration
}

// NewAdmin returns an admin client for the node at addr.
func NewAdmin(addr string, timeout time.Duration) *Admin {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &Admin{addr: addr, timeout: timeout}
}

func (a *Admin) call(req *request) (*response, error) {
	conn, err := net.DialTimeout("tcp", a.addr, a.timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(a.timeout))
	if err := writeFrame(conn, req.encode()); err != nil {
		return nil, err
	}
	frame, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	return decodeResponse(frame)
}

func (a *Admin) simple(req *request) error {
	resp, err := a.call(req)
	if err != nil {
		return err
	}
	return resp.err()
}

// AddStore creates a store on the node.
func (a *Admin) AddStore(def *cluster.StoreDef) error {
	body, err := json.Marshal(def)
	if err != nil {
		return err
	}
	return a.simple(&request{Op: opAddStore, Body: body})
}

// DeleteStore removes a store from the node.
func (a *Admin) DeleteStore(name string) error {
	return a.simple(&request{Op: opDeleteStore, Store: name})
}

// ListStores returns the store names served by the node.
func (a *Admin) ListStores() ([]string, error) {
	resp, err := a.call(&request{Op: opListStores})
	if err != nil {
		return nil, err
	}
	if err := resp.err(); err != nil {
		return nil, err
	}
	var names []string
	return names, json.Unmarshal(resp.Payload, &names)
}

// GetCluster fetches the node's current topology metadata.
func (a *Admin) GetCluster() (*cluster.Cluster, error) {
	resp, err := a.call(&request{Op: opGetCluster})
	if err != nil {
		return nil, err
	}
	if err := resp.err(); err != nil {
		return nil, err
	}
	var c cluster.Cluster
	if err := json.Unmarshal(resp.Payload, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// UpdateCluster pushes new topology metadata to the node.
func (a *Admin) UpdateCluster(c *cluster.Cluster) error {
	body, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return a.simple(&request{Op: opUpdateCluster, Body: body})
}

// SwapReadOnly tells the node to atomically serve version v of a read-only
// store (the Swap phase of Figure II.3).
func (a *Admin) SwapReadOnly(store string, version int) error {
	return a.simple(&request{Op: opSwapReadOnly, Store: store, Body: []byte(strconv.Itoa(version))})
}

// RollbackReadOnly reverts a read-only store to its previous version.
func (a *Admin) RollbackReadOnly(store string) error {
	return a.simple(&request{Op: opRollbackRO, Store: store})
}

// FetchPartitions streams every entry of store whose primary partition is in
// partitions, invoking fn per entry. Used by rebalancing stealers.
func (a *Admin) FetchPartitions(store string, partitions []int, fn func(key []byte, vs []*versioned.Versioned) error) error {
	conn, err := net.DialTimeout("tcp", a.addr, a.timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	body, err := json.Marshal(partitions)
	if err != nil {
		return err
	}
	req := &request{Op: opFetchPartitions, Store: store, Body: body}
	if err := writeFrame(conn, req.encode()); err != nil {
		return err
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(a.timeout))
		frame, err := readFrame(conn)
		if err != nil {
			return err
		}
		if len(frame) == 0 {
			return nil // terminator
		}
		r := rbuf{b: frame}
		key, err := r.bytes32()
		if err != nil {
			return err
		}
		data, err := r.bytes32()
		if err != nil {
			return err
		}
		vs, err := decodeVersionSet(data)
		if err != nil {
			return err
		}
		if err := fn(key, vs); err != nil {
			return err
		}
	}
}

// DeletePartitions removes all keys with primary partitions in the set
// (donor cleanup after a completed migration).
func (a *Admin) DeletePartitions(store string, partitions []int) error {
	body, err := json.Marshal(partitions)
	if err != nil {
		return err
	}
	return a.simple(&request{Op: opDeletePartition, Store: store, Body: body})
}

// Move describes one rebalancing step: partition moves from donor to stealer.
type Move struct {
	Partition int
	From      int // donor node id
	To        int // stealer node id
}

// Rebalancer executes dynamic cluster membership changes (§II.B): partition
// ownership moves to new nodes while the cluster keeps serving. For each
// move it copies the partition's data from donor to stealer, then flips
// ownership in the topology metadata on every node, and finally cleans up
// the donor.
type Rebalancer struct {
	Admins map[int]*Admin // node id -> admin client
	Stores []string       // stores to migrate
}

// Execute runs the plan against base (the current topology), returning the
// updated topology that was installed on every node.
func (r *Rebalancer) Execute(base *cluster.Cluster, plan []Move) (*cluster.Cluster, error) {
	next := base.Clone()
	for _, m := range plan {
		owner, err := next.OwnerOf(m.Partition)
		if err != nil {
			return nil, err
		}
		if owner.ID != m.From {
			return nil, fmt.Errorf("voldemort: partition %d owned by node %d, plan says %d",
				m.Partition, owner.ID, m.From)
		}
		donor, ok := r.Admins[m.From]
		if !ok {
			return nil, fmt.Errorf("voldemort: no admin for donor node %d", m.From)
		}
		stealerAddr := next.NodeByID(m.To)
		if stealerAddr == nil {
			return nil, fmt.Errorf("voldemort: unknown stealer node %d", m.To)
		}
		// Copy phase: stream the partition from the donor into the stealer.
		for _, store := range r.Stores {
			dst := DialStore(store, stealerAddr.Addr(), 0)
			err := donor.FetchPartitions(store, []int{m.Partition}, func(key []byte, vs []*versioned.Versioned) error {
				for _, v := range vs {
					if err := dst.Put(key, v, nil); err != nil && !occurredErr(err) {
						return err
					}
				}
				return nil
			})
			dst.Close()
			if err != nil {
				return nil, fmt.Errorf("voldemort: copying %s partition %d: %w", store, m.Partition, err)
			}
		}
		if err := next.SetOwner(m.Partition, m.To); err != nil {
			return nil, err
		}
	}
	// Metadata flip: push the new topology to every node.
	for id, adm := range r.Admins {
		if err := adm.UpdateCluster(next); err != nil {
			return nil, fmt.Errorf("voldemort: updating metadata on node %d: %w", id, err)
		}
	}
	// Cleanup phase: donors drop the moved partitions.
	for _, m := range plan {
		donor := r.Admins[m.From]
		for _, store := range r.Stores {
			if err := donor.DeletePartitions(store, []int{m.Partition}); err != nil {
				return nil, fmt.Errorf("voldemort: donor cleanup node %d: %w", m.From, err)
			}
		}
	}
	return next, nil
}
