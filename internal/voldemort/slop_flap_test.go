package voldemort

import (
	"fmt"
	"testing"
	"time"
)

// TestSlopPusherNodeFlapsMidWrite models the hinted-handoff scenario of
// §II.B with a node that flaps down→up in the middle of a write stream:
// writes issued while the node is down are acked by the surviving W-quorum
// and parked as hints; once the node comes back the pusher must drain the
// queue so that every hint is applied exactly once — the recovered replica
// ends with exactly one version per key and further delivery rounds hand off
// nothing. (Hint counts themselves are not asserted exactly: the quorum
// early-exit can park a hint for an in-flight replica that then succeeds, and
// such duplicates are swallowed idempotently as obsolete versions.)
func TestSlopPusherNodeFlapsMidWrite(t *testing.T) {
	rig := newRig(t, 3, 12, 3, 1, 2, true) // N=3, W=2: one node down stays writable
	c := NewClient(rig.routed, nil, 100)

	// First half of the stream: node 0 is down.
	rig.flaky[0].SetFailing(true)
	for i := 0; i < 25; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d with node 0 down: %v", i, err)
		}
	}
	// One hint per outage-era key must land in the queue; straggler hints are
	// parked asynchronously as their results drain, so poll briefly.
	hintWait := time.Now().Add(2 * time.Second)
	for rig.slop.Pending() < 25 {
		if time.Now().After(hintWait) {
			t.Fatalf("only %d hints queued for 25 writes with a replica down", rig.slop.Pending())
		}
		time.Sleep(time.Millisecond)
	}

	// A delivery round while the node is still down must not lose the down
	// node's hints: afterwards the queue still holds one per outage-era key.
	rig.slop.DeliverOnce()
	if rig.slop.Pending() < 25 {
		t.Fatalf("failed delivery round lost hints: %d pending", rig.slop.Pending())
	}

	// Mid-stream flap: the node comes back; the second half of the writes
	// reaches it directly. Nothing has been handed off yet.
	rig.flaky[0].SetFailing(false)
	for i := 25; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d after recovery: %v", i, err)
		}
	}
	// Straggler writes beyond the quorum land asynchronously; wait until the
	// recovered node holds the whole healthy-era half directly.
	applyWait := time.Now().Add(2 * time.Second)
	for i := 25; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		for {
			if vs, err := rig.engines[0].Get(k, nil); err == nil && len(vs) == 1 {
				break
			}
			if time.Now().After(applyWait) {
				t.Fatalf("node 0 never received healthy-era key %s", k)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("k%d", i)
		if vs, err := rig.engines[0].Get([]byte(k), nil); err != nil || len(vs) != 0 {
			t.Fatalf("node 0 saw outage-era key %s before handoff: (%v, %v)", k, vs, err)
		}
	}

	// Drain to empty, then verify redelivery rounds are no-ops.
	deadline := time.Now().Add(5 * time.Second)
	for rig.slop.Pending() > 0 {
		rig.slop.DeliverOnce()
		if time.Now().After(deadline) {
			t.Fatalf("%d hints stuck in queue", rig.slop.Pending())
		}
	}
	for round := 0; round < 3; round++ {
		if n := rig.slop.DeliverOnce(); n != 0 {
			t.Fatalf("round %d redelivered %d hints after the queue drained", round, n)
		}
	}

	// Exactly-once effect: the recovered replica holds every key — outage-era
	// keys included — exactly once with the acknowledged value.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		vs, err := rig.engines[0].Get([]byte(k), nil)
		if err != nil {
			t.Fatalf("node 0 Get(%s): %v", k, err)
		}
		if len(vs) != 1 {
			t.Fatalf("node 0 has %d versions of %s, want exactly 1", len(vs), k)
		}
		if got, want := string(vs[0].Value), fmt.Sprintf("v%d", i); got != want {
			t.Fatalf("node 0 %s = %q, want %q", k, got, want)
		}
	}
}
