package voldemort

import (
	"sync"
	"time"

	"datainfra/internal/storage"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// EngineStore adapts a storage.Engine to the Store interface, applying
// server-side transforms. It is the bottom of the Figure II.1 stack on each
// node.
type EngineStore struct {
	engine     storage.Engine
	transforms *TransformRegistry
	nodeID     int32

	// putMu serializes transformed puts, which are read-modify-write.
	putMu sync.Mutex
}

// NewEngineStore wraps engine. nodeID stamps clocks generated for
// transformed puts. transforms may be nil, in which case the default
// registry is used.
func NewEngineStore(engine storage.Engine, nodeID int, transforms *TransformRegistry) *EngineStore {
	if transforms == nil {
		transforms = NewTransformRegistry()
	}
	return &EngineStore{engine: engine, transforms: transforms, nodeID: int32(nodeID)}
}

// Engine exposes the wrapped engine (admin streaming, tests).
func (s *EngineStore) Engine() storage.Engine { return s.engine }

// Name returns the underlying store name.
func (s *EngineStore) Name() string { return s.engine.Name() }

// Get reads versions, optionally transforming each value.
func (s *EngineStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	vs, err := s.engine.Get(key)
	if err != nil || tr == nil {
		return vs, err
	}
	fn, err := s.transforms.Get(tr.Name)
	if err != nil {
		return nil, err
	}
	out := make([]*versioned.Versioned, len(vs))
	for i, v := range vs {
		tv, err := fn(v.Value, tr.Arg)
		if err != nil {
			return nil, err
		}
		out[i] = versioned.With(tv, v.Clock)
	}
	return out, nil
}

// Put writes v. With a transform, the stored value is read, merged with the
// incoming value by the transform, and written back under a clock that
// dominates everything read — the server-side append of Figure II.2.
func (s *EngineStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	if tr == nil {
		return s.engine.Put(key, v)
	}
	fn, err := s.transforms.Put(tr.Name)
	if err != nil {
		return err
	}
	s.putMu.Lock()
	defer s.putMu.Unlock()
	current, err := s.engine.Get(key)
	if err != nil {
		return err
	}
	var curValue []byte
	clock := v.Clock
	if cur := LWWResolver(current); cur != nil {
		curValue = cur.Value
		for _, c := range current {
			clock = clock.Merge(c.Clock)
		}
		clock = clock.Incremented(s.nodeID, time.Now().UnixMilli())
	}
	merged, err := fn(curValue, v.Value, tr.Arg)
	if err != nil {
		return err
	}
	return s.engine.Put(key, versioned.With(merged, clock))
}

// Delete removes dominated versions.
func (s *EngineStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	return s.engine.Delete(key, clock)
}

// Close closes the engine.
func (s *EngineStore) Close() error { return s.engine.Close() }
