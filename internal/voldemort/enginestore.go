package voldemort

import (
	"sync"
	"time"

	"datainfra/internal/cache"
	"datainfra/internal/storage"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
)

// EngineStore adapts a storage.Engine to the Store interface, applying
// server-side transforms. It is the bottom of the Figure II.1 stack on each
// node.
type EngineStore struct {
	engine     storage.Engine
	transforms *TransformRegistry
	nodeID     int32

	// putMu serializes transformed puts, which are read-modify-write.
	putMu sync.Mutex

	// cache, when non-nil, serves the hot set of raw version sets in
	// front of the engine with write-through invalidation. Cached
	// entries carry their vector clocks untouched, so quorum reads,
	// conflict resolution, and read repair behave identically; the
	// cache only short-circuits the engine lookup. loadFn is built once
	// so the hit path never allocates a closure.
	cache  *cache.Cache[[]*versioned.Versioned]
	loadFn func(key []byte) ([]*versioned.Versioned, error)
}

// NewEngineStore wraps engine. nodeID stamps clocks generated for
// transformed puts. transforms may be nil, in which case the default
// registry is used.
func NewEngineStore(engine storage.Engine, nodeID int, transforms *TransformRegistry) *EngineStore {
	if transforms == nil {
		transforms = NewTransformRegistry()
	}
	return &EngineStore{engine: engine, transforms: transforms, nodeID: int32(nodeID)}
}

// EnableCache puts a hot-set read cache with the given byte budget in
// front of the engine. Call before the store starts serving; maxBytes
// <= 0 leaves caching disabled. Returns s for chaining.
func (s *EngineStore) EnableCache(maxBytes int64) *EngineStore {
	if maxBytes <= 0 {
		return s
	}
	s.cache = cache.New(cache.Config[[]*versioned.Versioned]{
		Name:     "voldemort",
		MaxBytes: maxBytes,
		SizeOf:   sizeOfVersionSet,
	})
	s.loadFn = func(key []byte) ([]*versioned.Versioned, error) { return s.engine.Get(key) }
	return s
}

// Cache exposes the read cache, if enabled (stats, tests).
func (s *EngineStore) Cache() *cache.Cache[[]*versioned.Versioned] { return s.cache }

// sizeOfVersionSet charges a cached version set against the byte
// budget: key bytes plus, per version, the value payload, the clock
// entries, and a fixed overhead for the structs and slice headers.
func sizeOfVersionSet(key string, vs []*versioned.Versioned) int64 {
	size := int64(len(key)) + 48
	for _, v := range vs {
		size += int64(len(v.Value)) + 64
		if v.Clock != nil {
			size += int64(len(v.Clock.Entries())) * 24
		}
	}
	return size
}

// read fetches the raw version set for key, through the cache when one
// is enabled. An empty version set (missing key) is a valid, cacheable
// answer — negative caching keeps repeated misses off the engine.
func (s *EngineStore) read(key []byte) ([]*versioned.Versioned, error) {
	if s.cache == nil {
		return s.engine.Get(key)
	}
	return s.cache.GetOrLoad(key, s.loadFn)
}

// invalidate fences the key after an engine mutation. Called even when
// the mutation reported an error: over-invalidating is always safe.
func (s *EngineStore) invalidate(key []byte) {
	if s.cache != nil {
		s.cache.Invalidate(key)
	}
}

// InvalidateCache drops the whole read cache. Admin paths that mutate
// the engine wholesale (partition delete, read-only swap) call this.
func (s *EngineStore) InvalidateCache() {
	if s.cache != nil {
		s.cache.InvalidateAll()
	}
}

// Engine exposes the wrapped engine (admin streaming, tests). Callers
// that mutate through it directly must call InvalidateCache afterwards.
func (s *EngineStore) Engine() storage.Engine { return s.engine }

// Name returns the underlying store name.
func (s *EngineStore) Name() string { return s.engine.Name() }

// Get reads versions, optionally transforming each value.
func (s *EngineStore) Get(key []byte, tr *Transform) ([]*versioned.Versioned, error) {
	vs, err := s.read(key)
	if err != nil || tr == nil {
		return vs, err
	}
	fn, err := s.transforms.Get(tr.Name)
	if err != nil {
		return nil, err
	}
	out := make([]*versioned.Versioned, len(vs))
	for i, v := range vs {
		tv, err := fn(v.Value, tr.Arg)
		if err != nil {
			return nil, err
		}
		out[i] = versioned.With(tv, v.Clock)
	}
	return out, nil
}

// Put writes v. With a transform, the stored value is read, merged with the
// incoming value by the transform, and written back under a clock that
// dominates everything read — the server-side append of Figure II.2.
func (s *EngineStore) Put(key []byte, v *versioned.Versioned, tr *Transform) error {
	if tr == nil {
		err := s.engine.Put(key, v)
		s.invalidate(key)
		return err
	}
	fn, err := s.transforms.Put(tr.Name)
	if err != nil {
		return err
	}
	s.putMu.Lock()
	defer s.putMu.Unlock()
	current, err := s.engine.Get(key)
	if err != nil {
		return err
	}
	var curValue []byte
	clock := v.Clock
	if cur := LWWResolver(current); cur != nil {
		curValue = cur.Value
		for _, c := range current {
			clock = clock.Merge(c.Clock)
		}
		clock = clock.Incremented(s.nodeID, time.Now().UnixMilli())
	}
	merged, err := fn(curValue, v.Value, tr.Arg)
	if err != nil {
		return err
	}
	err = s.engine.Put(key, versioned.With(merged, clock))
	s.invalidate(key)
	return err
}

// Delete removes dominated versions.
func (s *EngineStore) Delete(key []byte, clock *vclock.Clock) (bool, error) {
	ok, err := s.engine.Delete(key, clock)
	s.invalidate(key)
	return ok, err
}

// Close closes the engine.
func (s *EngineStore) Close() error { return s.engine.Close() }
