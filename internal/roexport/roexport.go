// Package roexport implements the three-phase data cycle of Figure II.3 that
// loads offline ("Hadoop") job output into Voldemort's read-only stores:
//
//	Build  — partition the job output by destination node, sort each chunk by
//	         MD5(key), and emit compact index + data files into a shared
//	         "cluster filesystem" directory (the HDFS substitute);
//	Pull   — every node fetches its chunk, optionally throttled, into a new
//	         versioned directory (data files before index files, for
//	         cache-locality post-swap);
//	Swap   — the controller coordinates an atomic swap across all nodes;
//	         versioned directories allow instantaneous rollback.
package roexport

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/ring"
	"datainfra/internal/storage"
)

// Builder is the offline (Hadoop-substitute) side: it consumes the job's
// key/value output and produces per-node read-only store files.
type Builder struct {
	Cluster  *cluster.Cluster
	Strategy ring.Strategy // decides which nodes replicate each key
	OutDir   string        // the shared filesystem (HDFS substitute)
	Store    string
	Version  int
}

// chunkDir is where the build phase leaves node n's files.
func (b *Builder) chunkDir(node int) string {
	return filepath.Join(b.OutDir, b.Store, fmt.Sprintf("version-%d", b.Version), fmt.Sprintf("node-%d", node))
}

// Build partitions kvs by destination node (a key goes to every replica in
// its preference list), sorts by MD5 digest and writes index+data files —
// leveraging the offline system's ability to sort, exactly as the reducers
// do in the paper.
func (b *Builder) Build(kvs []storage.KV) error {
	byNode := make(map[int][]storage.KV)
	for _, kv := range kvs {
		for _, n := range b.Strategy.NodeList(kv.Key) {
			byNode[n.ID] = append(byNode[n.ID], kv)
		}
	}
	for _, node := range b.Cluster.Nodes {
		// Every node gets a (possibly empty) chunk so pulls are uniform.
		if err := storage.WriteReadOnlyFiles(b.chunkDir(node.ID), byNode[node.ID]); err != nil {
			return fmt.Errorf("roexport: build node %d: %w", node.ID, err)
		}
	}
	return nil
}

// Throttler caps pull bandwidth in bytes/second (0 = unthrottled) — the
// "throttling the pulls" optimization of §II.C.
type Throttler struct {
	BytesPerSec int64
	spent       int64
	windowStart time.Time
}

// Limit blocks as needed after transferring n bytes.
func (t *Throttler) Limit(n int64) {
	if t.BytesPerSec <= 0 {
		return
	}
	if t.windowStart.IsZero() {
		t.windowStart = time.Now()
	}
	t.spent += n
	expected := time.Duration(float64(t.spent) / float64(t.BytesPerSec) * float64(time.Second))
	elapsed := time.Since(t.windowStart)
	if expected > elapsed {
		time.Sleep(expected - elapsed)
	}
}

// Puller is the per-node fetch: it copies the node's chunk from the shared
// directory into the node's local store directory as version-N.
type Puller struct {
	Throttle *Throttler // optional
}

// Pull copies srcDir into destDir. Data files are pulled before index files
// so the index lands last (cache-locality post-swap, §II.C).
func (p *Puller) Pull(srcDir, destDir string) (int64, error) {
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for _, name := range []string{"data", "index"} {
		n, err := p.copyFile(filepath.Join(srcDir, name), filepath.Join(destDir, name))
		if err != nil {
			return total, fmt.Errorf("roexport: pulling %s: %w", name, err)
		}
		total += n
	}
	return total, nil
}

func (p *Puller) copyFile(src, dst string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	var total int64
	buf := make([]byte, 64<<10)
	for {
		n, err := in.Read(buf)
		if n > 0 {
			if _, werr := out.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
			if p.Throttle != nil {
				p.Throttle.Limit(int64(n))
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
	}
	return total, out.Sync()
}

// NodeTarget is one node's pull destination plus its swap hook.
type NodeTarget struct {
	NodeID   int
	StoreDir string                  // local store dir holding version-N subdirs
	Swap     func(version int) error // atomically serve version-N
	Rollback func() error            // revert to the previous version
}

// Controller coordinates the full Build → Pull → Swap cycle across the
// cluster (§II.B: "the complete data pipeline ... is co-ordinated by a
// controller").
type Controller struct {
	Builder *Builder
	Puller  *Puller
	Targets []NodeTarget
}

// Run executes the cycle for kvs. The swap is all-or-nothing: if any node
// fails to pull, no node swaps; if a swap fails midway, the already-swapped
// nodes are rolled back.
func (c *Controller) Run(kvs []storage.KV) error {
	// Build phase (offline).
	if err := c.Builder.Build(kvs); err != nil {
		return err
	}
	// Pull phase: every node fetches its chunk into a fresh versioned dir.
	for _, tgt := range c.Targets {
		src := c.Builder.chunkDir(tgt.NodeID)
		dst := filepath.Join(tgt.StoreDir, fmt.Sprintf("version-%d", c.Builder.Version))
		if _, err := c.Puller.Pull(src, dst); err != nil {
			return fmt.Errorf("roexport: pull to node %d: %w", tgt.NodeID, err)
		}
	}
	// Swap phase: atomic across the cluster, with rollback on failure.
	swapped := make([]NodeTarget, 0, len(c.Targets))
	for _, tgt := range c.Targets {
		if err := tgt.Swap(c.Builder.Version); err != nil {
			for _, done := range swapped {
				_ = done.Rollback()
			}
			return fmt.Errorf("roexport: swap on node %d failed (rolled back %d nodes): %w",
				tgt.NodeID, len(swapped), err)
		}
		swapped = append(swapped, tgt)
	}
	return nil
}
