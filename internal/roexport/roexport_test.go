package roexport

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/ring"
	"datainfra/internal/storage"
)

// rig builds a 3-node cluster with read-only engines and a controller.
func rig(t *testing.T, version int, throttle *Throttler) (*Controller, []*storage.ReadOnlyEngine) {
	t.Helper()
	clus := cluster.Uniform("ro", 3, 12, 8000)
	strategy, err := ring.NewConsistent(clus, 2)
	if err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	engines := make([]*storage.ReadOnlyEngine, 3)
	targets := make([]NodeTarget, 3)
	for i := 0; i < 3; i++ {
		storeDir := filepath.Join(t.TempDir(), "store")
		e, err := storage.OpenReadOnly("pymk", storeDir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		engines[i] = e
		targets[i] = NodeTarget{
			NodeID:   i,
			StoreDir: storeDir,
			Swap:     e.Swap,
			Rollback: e.Rollback,
		}
	}
	ctl := &Controller{
		Builder: &Builder{Cluster: clus, Strategy: strategy, OutDir: outDir, Store: "pymk", Version: version},
		Puller:  &Puller{Throttle: throttle},
		Targets: targets,
	}
	return ctl, engines
}

func kvs(n int) []storage.KV {
	out := make([]storage.KV, n)
	for i := range out {
		out[i] = storage.KV{
			Key:   []byte(fmt.Sprintf("member-%d", i)),
			Value: []byte(fmt.Sprintf("recs:%d,%d,%d", i+1, i+2, i+3)),
		}
	}
	return out
}

func TestFullCycleServesEveryKeyWithReplication(t *testing.T) {
	ctl, engines := rig(t, 1, nil)
	data := kvs(500)
	if err := ctl.Run(data); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		if e.Version() != 1 {
			t.Fatalf("engine serving version %d", e.Version())
		}
	}
	// every key must be found on exactly its N=2 replica nodes
	for _, kv := range data {
		found := 0
		for _, e := range engines {
			vs, err := e.Get(kv.Key)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) == 1 {
				if string(vs[0].Value) != string(kv.Value) {
					t.Fatalf("key %s wrong value", kv.Key)
				}
				found++
			}
		}
		if found != 2 {
			t.Fatalf("key %s on %d nodes, want 2", kv.Key, found)
		}
	}
}

func TestNewVersionSwapsAndRollsBack(t *testing.T) {
	ctl1, engines := rig(t, 1, nil)
	if err := ctl1.Run(kvs(50)); err != nil {
		t.Fatal(err)
	}
	// second deployment with different data, same engines
	ctl2 := &Controller{
		Builder: &Builder{
			Cluster: ctl1.Builder.Cluster, Strategy: ctl1.Builder.Strategy,
			OutDir: t.TempDir(), Store: "pymk", Version: 2,
		},
		Puller:  &Puller{},
		Targets: ctl1.Targets,
	}
	data2 := []storage.KV{{Key: []byte("member-0"), Value: []byte("NEW")}}
	if err := ctl2.Run(data2); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		if e.Version() != 2 {
			t.Fatalf("engine at version %d after second deploy", e.Version())
		}
	}
	// the new data is served; the old key set is gone
	hits := 0
	for _, e := range engines {
		if vs, _ := e.Get([]byte("member-0")); len(vs) == 1 && string(vs[0].Value) == "NEW" {
			hits++
		}
		if vs, _ := e.Get([]byte("member-10")); len(vs) != 0 {
			t.Fatal("old version data leaked into new version")
		}
	}
	if hits != 2 {
		t.Fatalf("new data on %d nodes", hits)
	}
	// instantaneous rollback on every node restores version 1
	for _, e := range engines {
		if err := e.Rollback(); err != nil {
			t.Fatal(err)
		}
		if e.Version() != 1 {
			t.Fatalf("rollback landed on version %d", e.Version())
		}
	}
	found := 0
	for _, e := range engines {
		if vs, _ := e.Get([]byte("member-10")); len(vs) == 1 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("rolled-back data on %d nodes", found)
	}
}

func TestSwapFailureRollsBackCompletedNodes(t *testing.T) {
	ctl, engines := rig(t, 1, nil)
	if err := ctl.Run(kvs(20)); err != nil {
		t.Fatal(err)
	}
	// version 2: sabotage the last node's swap
	boom := errors.New("boom")
	ctl2 := &Controller{
		Builder: &Builder{
			Cluster: ctl.Builder.Cluster, Strategy: ctl.Builder.Strategy,
			OutDir: t.TempDir(), Store: "pymk", Version: 2,
		},
		Puller: &Puller{},
	}
	ctl2.Targets = append([]NodeTarget{}, ctl.Targets...)
	ctl2.Targets[2].Swap = func(int) error { return boom }
	err := ctl2.Run(kvs(5))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// nodes 0 and 1 were swapped then rolled back; all should serve v1
	for i, e := range engines {
		if e.Version() != 1 {
			t.Fatalf("node %d serving version %d after failed swap", i, e.Version())
		}
	}
}

func TestThrottledPullIsSlower(t *testing.T) {
	// E17 ablation: throttling caps the pull rate.
	data := kvs(2000) // ~50 KB of data files

	ctlFast, _ := rig(t, 1, nil)
	start := time.Now()
	if err := ctlFast.Run(data); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)

	ctlSlow, _ := rig(t, 1, &Throttler{BytesPerSec: 400 << 10})
	start = time.Now()
	if err := ctlSlow.Run(data); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow <= fast {
		t.Fatalf("throttled pull (%v) not slower than unthrottled (%v)", slow, fast)
	}
}

func TestBuildEmptyChunksForIdleNodes(t *testing.T) {
	// a single hot key replicates to 2 of 3 nodes; the third still gets an
	// openable empty chunk
	ctl, engines := rig(t, 1, nil)
	if err := ctl.Run([]storage.KV{{Key: []byte("hot"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, e := range engines {
		if e.Len() > 0 {
			nonEmpty++
		}
		if e.Version() != 1 {
			t.Fatalf("idle node failed to swap")
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("%d nodes hold the key, want 2", nonEmpty)
	}
}
