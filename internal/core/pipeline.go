// Package core wires the paper's systems into the site-wide data flow of
// Figure I.1: Espresso is the primary online store; every change it commits
// flows through Databus to the subscriber systems — here a Voldemort-backed
// read cache and a search index — while user-activity events flow through
// Kafka from the live datacenter to an offline cluster via the embedded
// mirror consumer.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"datainfra/internal/databus"
	"datainfra/internal/docindex"
	"datainfra/internal/espresso"
	"datainfra/internal/kafka"
	"datainfra/internal/schema"
	"datainfra/internal/storage"
	"datainfra/internal/vclock"
	"datainfra/internal/versioned"
	"datainfra/internal/voldemort"
)

// PipelineConfig sizes the demo site.
type PipelineConfig struct {
	Database        *espresso.Database // primary store definition
	StorageNodes    int                // Espresso nodes; default 3
	KafkaDataDir    string             // broker storage root (required)
	KafkaPartitions int                // partitions per topic; default 4
}

// Pipeline is the assembled Figure I.1 stack.
type Pipeline struct {
	// Live storage.
	Espresso *espresso.Cluster
	// Stream layer: the Espresso cluster's relay doubles as the site's
	// change-capture feed (§III: Databus is the central replication layer).
	Cache *voldemort.EngineStore // Databus-fed read cache (Voldemort engine)
	// Search subscriber (the People Search Index stand-in).
	Search *docindex.Index
	// Activity pipeline.
	LiveKafka    *kafka.Broker
	OfflineKafka *kafka.Broker
	Mirror       *kafka.Mirror
	Activity     *kafka.Producer

	subscribers []*databus.Client
}

// NewPipeline boots every tier.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Database == nil {
		return nil, fmt.Errorf("core: pipeline needs a database definition")
	}
	if cfg.StorageNodes == 0 {
		cfg.StorageNodes = 3
	}
	if cfg.KafkaPartitions == 0 {
		cfg.KafkaPartitions = 4
	}
	p := &Pipeline{Search: docindex.New()}

	// Live storage tier.
	esp, err := espresso.NewCluster(cfg.Database)
	if err != nil {
		return nil, err
	}
	p.Espresso = esp
	for i := 0; i < cfg.StorageNodes; i++ {
		if _, err := esp.AddNode(fmt.Sprintf("es-%d", i)); err != nil {
			p.Close()
			return nil, err
		}
	}
	if err := esp.WaitForMasters(10 * time.Second); err != nil {
		p.Close()
		return nil, err
	}

	// Databus subscribers: read cache + search indexer.
	p.Cache = voldemort.NewEngineStore(storage.NewMemory("cache"), 0, nil)
	cacheClient, err := databus.NewClient(databus.ClientConfig{
		Relay:      esp.Relay,
		Bootstrap:  esp.Boot,
		Consumer:   databus.ConsumerFuncs{Event: p.applyCache},
		PollExpiry: 5 * time.Millisecond,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	cacheClient.Start()
	p.subscribers = append(p.subscribers, cacheClient)

	searchClient, err := databus.NewClient(databus.ClientConfig{
		Relay:      esp.Relay,
		Bootstrap:  esp.Boot,
		Consumer:   databus.ConsumerFuncs{Event: p.applySearch},
		PollExpiry: 5 * time.Millisecond,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	searchClient.Start()
	p.subscribers = append(p.subscribers, searchClient)

	// Activity pipeline: live broker, offline broker, mirror.
	live, err := kafka.NewBroker(0, cfg.KafkaDataDir+"/live", kafka.BrokerConfig{
		PartitionsPerTopic: cfg.KafkaPartitions,
		Log:                kafka.LogConfig{FlushMessages: 100, FlushInterval: 5 * time.Millisecond},
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	p.LiveKafka = live
	offline, err := kafka.NewBroker(1, cfg.KafkaDataDir+"/offline", kafka.BrokerConfig{
		PartitionsPerTopic: cfg.KafkaPartitions,
		Log:                kafka.LogConfig{FlushMessages: 100, FlushInterval: 5 * time.Millisecond},
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	p.OfflineKafka = offline
	p.Activity = kafka.NewProducer(live, kafka.ProducerConfig{BatchSize: 50, Compression: true, Linger: 5 * time.Millisecond})
	return p, nil
}

// cacheKey is the rowID form used by the cache subscriber.
func cacheKey(e *databus.Event) []byte { return e.Key }

// applyCache maintains the Voldemort read cache from the change stream —
// the "read replicas, invalidating and keeping caches consistent" use case
// of §III.E.
func (p *Pipeline) applyCache(e databus.Event) error {
	if e.Op == databus.OpDelete {
		_, err := p.Cache.Delete(cacheKey(&e), nil)
		return err
	}
	// SCN-stamped clocks: later commits dominate earlier ones, and
	// redelivered events are harmlessly obsolete.
	clock := vclock.FromEntries([]vclock.Entry{{Node: 0, Version: uint64(e.SCN)}}, e.Timestamp)
	err := p.Cache.Put(cacheKey(&e), versioned.With(e.Payload, clock), nil)
	if errors.Is(err, versioned.ErrObsoleteVersion) {
		return nil // replayed event; cache already newer
	}
	return err
}

// applySearch keeps the search index consistent with profile changes — the
// Databus-fed People Search Index of §III.A.
func (p *Pipeline) applySearch(e databus.Event) error {
	docID := string(e.Key)
	if e.Op == databus.OpDelete {
		p.Search.Remove(docID)
		return nil
	}
	var cr struct {
		Table         string `json:"table"`
		Val           []byte `json:"val"`
		SchemaVersion int    `json:"schemaVersion"`
	}
	if err := json.Unmarshal(e.Payload, &cr); err != nil {
		return err
	}
	subject := p.Espresso.DB.Schema.Name + "." + cr.Table
	rec, err := p.Espresso.DB.Registry.Get(subject, cr.SchemaVersion)
	if err != nil {
		return err
	}
	doc, err := schema.Unmarshal(rec, cr.Val)
	if err != nil {
		return err
	}
	p.Search.Remove(docID)
	for _, f := range rec.IndexedFields() {
		if s, ok := doc[f.Name].(string); ok {
			kind := docindex.Exact
			if f.Index == schema.IndexText {
				kind = docindex.Text
			}
			p.Search.Add(docID, f.Name, s, kind)
		}
	}
	return nil
}

// Write commits a document to the primary store; Databus fans it out to the
// cache and index asynchronously.
func (p *Pipeline) Write(key espresso.DocKey, doc map[string]any) (*espresso.Row, error) {
	node, err := p.Espresso.Route(key.ResourceID())
	if err != nil {
		return nil, err
	}
	return node.Put(key, doc, "")
}

// Read serves from the primary store.
func (p *Pipeline) Read(key espresso.DocKey) (map[string]any, error) {
	node, err := p.Espresso.Route(key.ResourceID())
	if err != nil {
		return nil, err
	}
	row, err := node.Get(key)
	if err != nil {
		return nil, err
	}
	return node.Document(row)
}

// CacheHas reports whether the Databus-fed cache has caught up for key.
func (p *Pipeline) CacheHas(key espresso.DocKey) bool {
	vs, err := p.Cache.Get([]byte(rowIDOf(key)), nil)
	return err == nil && len(vs) > 0
}

// rowIDOf mirrors espresso's internal row id form for cache lookups.
func rowIDOf(key espresso.DocKey) string {
	id := key.Table
	for _, part := range key.Parts {
		id += "\x1f" + part
	}
	return id
}

// SearchText queries the subscriber-maintained index.
func (p *Pipeline) SearchText(field, query string) []string {
	return p.Search.QueryText(field, query)
}

// Track publishes a user-activity event to the live Kafka cluster.
func (p *Pipeline) Track(topic string, key, payload []byte) error {
	return p.Activity.Send(topic, key, payload)
}

// StartMirror begins replicating topic to the offline cluster (§V.D).
func (p *Pipeline) StartMirror(topic string) error {
	if p.Mirror != nil {
		p.Mirror.Close()
	}
	p.Mirror = kafka.NewMirror(p.LiveKafka, p.OfflineKafka, topic)
	return p.Mirror.Start()
}

// Close tears the stack down.
func (p *Pipeline) Close() {
	for _, c := range p.subscribers {
		c.Close()
	}
	if p.Activity != nil {
		p.Activity.Close()
	}
	if p.Mirror != nil {
		p.Mirror.Close()
	}
	if p.LiveKafka != nil {
		p.LiveKafka.Close()
	}
	if p.OfflineKafka != nil {
		p.OfflineKafka.Close()
	}
	if p.Espresso != nil {
		p.Espresso.Close()
	}
}
