package core

import (
	"fmt"
	"testing"
	"time"

	"datainfra/internal/espresso"
	"datainfra/internal/kafka"
	"datainfra/internal/schema"
)

// memberDB is the member-profile database powering the Figure I.1 demo.
func memberDB(t testing.TB) *espresso.Database {
	t.Helper()
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Members", NumPartitions: 4, Replicas: 2},
		[]*espresso.TableSchema{{Name: "Profile", KeyParts: []string{"member"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Profile", schema.MustParse(`{
		"name":"Profile","fields":[
			{"name":"name","type":"string"},
			{"name":"headline","type":"string","index":"text"},
			{"name":"company","type":"string","index":"exact"}
		]}`)); err != nil {
		t.Fatal(err)
	}
	return db
}

func newPipeline(t testing.TB) *Pipeline {
	t.Helper()
	p, err := NewPipeline(PipelineConfig{
		Database:     memberDB(t),
		StorageNodes: 2,
		KafkaDataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func profileKey(member string) espresso.DocKey {
	return espresso.DocKey{Table: "Profile", Parts: []string{member}}
}

func waitUntil(t testing.TB, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPipelinePrimaryReadWrite(t *testing.T) {
	p := newPipeline(t)
	key := profileKey("jkreps")
	if _, err := p.Write(key, map[string]any{
		"name": "Jay", "headline": "building kafka at linkedin", "company": "LinkedIn"}); err != nil {
		t.Fatal(err)
	}
	doc, err := p.Read(key)
	if err != nil {
		t.Fatal(err)
	}
	if doc["name"] != "Jay" {
		t.Fatalf("doc = %v", doc)
	}
}

func TestPipelineCacheFollowsChanges(t *testing.T) {
	p := newPipeline(t)
	key := profileKey("nneha")
	if _, err := p.Write(key, map[string]any{
		"name": "Neha", "headline": "streams", "company": "LinkedIn"}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "cache to absorb the change", 5*time.Second, func() bool {
		return p.CacheHas(key)
	})
}

func TestPipelineSearchFollowsChanges(t *testing.T) {
	p := newPipeline(t)
	for i, headline := range []string{
		"distributed systems engineer",
		"site reliability engineer",
		"product designer",
	} {
		if _, err := p.Write(profileKey(fmt.Sprintf("m%d", i)), map[string]any{
			"name": fmt.Sprintf("m%d", i), "headline": headline, "company": "LinkedIn"}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "search index to absorb the changes", 5*time.Second, func() bool {
		return len(p.SearchText("headline", "engineer")) == 2
	})
	// updates re-index downstream too
	if _, err := p.Write(profileKey("m2"), map[string]any{
		"name": "m2", "headline": "engineer now", "company": "LinkedIn"}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "search index to absorb the update", 5*time.Second, func() bool {
		return len(p.SearchText("headline", "engineer")) == 3
	})
}

func TestPipelineActivityMirroring(t *testing.T) {
	p := newPipeline(t)
	const total = 80
	for i := 0; i < total; i++ {
		if err := p.Track("page_views", []byte(fmt.Sprintf("m%d", i%8)),
			[]byte(fmt.Sprintf(`{"member":"m%d","page":"/feed"}`, i%8))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Activity.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.StartMirror("page_views"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "mirror to copy all events", 10*time.Second, func() bool {
		return p.Mirror.Copied() >= total
	})
	// offline cluster serves the events for batch jobs
	if err := p.OfflineKafka.FlushAll(); err != nil {
		t.Fatal(err)
	}
	sc := kafka.NewSimpleConsumer(p.OfflineKafka, 1<<20)
	n, err := p.OfflineKafka.Partitions("page_views")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for part := 0; part < n; part++ {
		off := int64(0)
		for {
			msgs, err := sc.Consume("page_views", part, off)
			if err != nil || len(msgs) == 0 {
				break
			}
			got += len(msgs)
			off = msgs[len(msgs)-1].NextOffset
		}
	}
	if got != total {
		t.Fatalf("offline cluster has %d/%d events", got, total)
	}
}
