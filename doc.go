// Package datainfra reproduces "Data Infrastructure at LinkedIn" (ICDE
// 2012): Voldemort, Databus, Espresso and Kafka, together with the
// substrates they depend on (a Zookeeper-like coordination service, a
// Helix-like cluster manager, an Avro-like serialization system, storage
// engines and the Hadoop read-only build pipeline), implemented from scratch
// on the Go standard library.
//
// The implementation lives under internal/ (one package per subsystem; see
// DESIGN.md for the inventory); runnable servers are under cmd/, runnable
// scenarios under examples/, and the benchmark harness that regenerates the
// paper's reported numbers is in the root *_test.go files (results recorded
// in EXPERIMENTS.md).
package datainfra
