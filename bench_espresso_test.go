// Espresso experiments E13, E16, E17 (see DESIGN.md §3 and EXPERIMENTS.md).
package datainfra

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/databus"
	"datainfra/internal/espresso"
	"datainfra/internal/ring"
	"datainfra/internal/roexport"
	"datainfra/internal/schema"
	"datainfra/internal/storage"
	"datainfra/internal/workload"
)

func benchMusicDB(b *testing.B, partitions, replicas int) *espresso.Database {
	b.Helper()
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Music", NumPartitions: partitions, Replicas: replicas},
		[]*espresso.TableSchema{
			{Name: "Artist", KeyParts: []string{"artist"}},
			{Name: "Song", KeyParts: []string{"artist", "album", "song"}},
		})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Artist", schema.MustParse(`{
		"name":"Artist","fields":[{"name":"name","type":"string"},{"name":"genre","type":"string","index":"exact"}]}`)); err != nil {
		b.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Song", schema.MustParse(`{
		"name":"Song","fields":[
			{"name":"title","type":"string"},
			{"name":"lyrics","type":"string","index":"text"},
			{"name":"durationSec","type":"long"}]}`)); err != nil {
		b.Fatal(err)
	}
	return db
}

func soloEspresso(b *testing.B, db *espresso.Database) *espresso.Node {
	b.Helper()
	n := espresso.NewNode("solo", db, databus.NewLogSource())
	for p := 0; p < db.Schema.NumPartitions; p++ {
		n.SetRole(p, true)
	}
	return n
}

// BenchmarkE13EspressoGet measures primary-key document reads (§IV.B:
// "requests for specific resources can be satisfied via direct lookup").
func BenchmarkE13EspressoGet(b *testing.B) {
	db := benchMusicDB(b, 8, 1)
	n := soloEspresso(b, db)
	const artists = 5000
	for i := 0; i < artists; i++ {
		key := espresso.DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("a%d", i)}}
		if _, err := n.Put(key, map[string]any{"name": fmt.Sprintf("a%d", i), "genre": "rock"}, ""); err != nil {
			b.Fatal(err)
		}
	}
	gen := workload.NewUniform(artists, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := espresso.DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("a%d", gen.Next())}}
		if _, err := n.Get(key); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkE13EspressoPut measures writes including schema validation,
// binlog commit and index maintenance.
func BenchmarkE13EspressoPut(b *testing.B) {
	db := benchMusicDB(b, 8, 1)
	n := soloEspresso(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := espresso.DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("a%d", i)}}
		if _, err := n.Put(key, map[string]any{"name": "x", "genre": "rock"}, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13EspressoIndexQuery measures local secondary-index queries
// ("queries first consult a local secondary index then return the matching
// documents", §IV.B).
func BenchmarkE13EspressoIndexQuery(b *testing.B) {
	db := benchMusicDB(b, 4, 1)
	n := soloEspresso(b, db)
	const songs = 2000
	for i := 0; i < songs; i++ {
		key := espresso.DocKey{Table: "Song", Parts: []string{"The_Beatles", fmt.Sprintf("album%d", i%20), fmt.Sprintf("song%d", i)}}
		lyrics := fmt.Sprintf("common words track%d special", i)
		if i%10 == 0 {
			lyrics += " lucy in the sky"
		}
		if _, err := n.Put(key, map[string]any{"title": "t", "lyrics": lyrics, "durationSec": int64(200)}, ""); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := n.Query("Song", "The_Beatles", "lyrics", "lucy in the sky")
		if err != nil || len(rows) != songs/10 {
			b.Fatalf("(%d, %v)", len(rows), err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkE13EspressoTxn measures multi-table transactional commits (an
// album plus its songs, §IV.A).
func BenchmarkE13EspressoTxn(b *testing.B) {
	db := benchMusicDB(b, 8, 1)
	n := soloEspresso(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		artist := fmt.Sprintf("artist%d", i)
		writes := []espresso.Write{
			{Key: espresso.DocKey{Table: "Artist", Parts: []string{artist}},
				Doc: map[string]any{"name": artist, "genre": "rock"}},
			{Key: espresso.DocKey{Table: "Song", Parts: []string{artist, "album", "s1"}},
				Doc: map[string]any{"title": "s1", "lyrics": "la", "durationSec": int64(100)}},
			{Key: espresso.DocKey{Table: "Song", Parts: []string{artist, "album", "s2"}},
				Doc: map[string]any{"title": "s2", "lyrics": "la la", "durationSec": int64(120)}},
		}
		if _, err := n.Commit(writes); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "txns/s")
}

// BenchmarkE16Failover measures the unavailability window when a master
// dies: slave catch-up plus Helix promotion (§IV.B fault tolerance).
func BenchmarkE16Failover(b *testing.B) {
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		db := benchMusicDB(b, 4, 2)
		c, err := espresso.NewCluster(db)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.AddNode(fmt.Sprintf("n%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.WaitForMasters(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			key := espresso.DocKey{Table: "Artist", Parts: []string{fmt.Sprintf("a%d", i)}}
			node, err := c.Route(key.ResourceID())
			if err != nil {
				continue
			}
			node.Put(key, map[string]any{"name": "x", "genre": "g"}, "")
		}
		victim, err := c.MasterOf(0)
		if err != nil {
			b.Fatal(err)
		}
		victimID := victim.Node.ID
		b.StartTimer()
		if err := c.KillNode(victimID); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			m, err := c.MasterOf(0)
			if err == nil && m.Node.ID != victimID && m.Node.IsMaster(0) {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("failover never completed")
			}
			time.Sleep(time.Millisecond)
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}

// BenchmarkE17BuildSwap times the Figure II.3 cycle for a 100K-entry store
// and isolates the swap (which the paper calls atomic and the rollback
// instantaneous).
func BenchmarkE17BuildSwap(b *testing.B) {
	clus := cluster.Uniform("ro", 3, 12, 0)
	strategy, err := ring.NewConsistent(clus, 2)
	if err != nil {
		b.Fatal(err)
	}
	const entries = 100000
	kvs := make([]storage.KV, entries)
	for i := range kvs {
		kvs[i] = storage.KV{Key: workload.Key("m", i), Value: workload.Value(i, 128)}
	}
	b.Run("full-cycle", func(b *testing.B) {
		for iter := 0; iter < b.N; iter++ {
			b.StopTimer()
			engines := make([]*storage.ReadOnlyEngine, 3)
			targets := make([]roexport.NodeTarget, 3)
			for i := range engines {
				dir := filepath.Join(b.TempDir(), "store")
				e, err := storage.OpenReadOnly("pymk", dir)
				if err != nil {
					b.Fatal(err)
				}
				engines[i] = e
				targets[i] = roexport.NodeTarget{NodeID: i, StoreDir: dir, Swap: e.Swap, Rollback: e.Rollback}
			}
			ctl := &roexport.Controller{
				Builder: &roexport.Builder{Cluster: clus, Strategy: strategy, OutDir: b.TempDir(), Store: "pymk", Version: 1},
				Puller:  &roexport.Puller{},
				Targets: targets,
			}
			b.StartTimer()
			if err := ctl.Run(kvs); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			for _, e := range engines {
				e.Close()
			}
			b.StartTimer()
		}
	})
	b.Run("swap-only", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "store")
		if err := storage.WriteReadOnlyFiles(filepath.Join(dir, "version-1"), kvs[:10000]); err != nil {
			b.Fatal(err)
		}
		if err := storage.WriteReadOnlyFiles(filepath.Join(dir, "version-2"), kvs[:10000]); err != nil {
			b.Fatal(err)
		}
		e, err := storage.OpenReadOnly("pymk", dir)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := 1 + i%2
			if err := e.Swap(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rollback", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "store")
		storage.WriteReadOnlyFiles(filepath.Join(dir, "version-1"), kvs[:10000])
		storage.WriteReadOnlyFiles(filepath.Join(dir, "version-2"), kvs[:10000])
		e, err := storage.OpenReadOnly("pymk", dir)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Rollback(); err != nil {
				b.Fatal(err)
			}
			if err := e.Swap(2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
