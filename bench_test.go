// Root benchmark harness: one benchmark per experiment row of DESIGN.md §3,
// regenerating the shape of every quantitative claim in the paper's text
// (the paper has no numbered result tables; its evaluation is prose-reported
// production numbers plus architecture figures). EXPERIMENTS.md records
// paper-vs-measured for each.
//
// Voldemort/Databus experiments E1–E8 and the Figure II benches live here;
// Kafka and Espresso experiments are in bench_kafka_test.go and
// bench_espresso_test.go.
package datainfra

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"datainfra/internal/bootstrap"
	"datainfra/internal/cluster"
	"datainfra/internal/databus"
	"datainfra/internal/ring"
	"datainfra/internal/roexport"
	"datainfra/internal/storage"
	"datainfra/internal/voldemort"
	"datainfra/internal/workload"
)

// rwCluster assembles the paper's largest read-write shape: 3 nodes, N=2,
// R=1, W=1 (low-latency quorum), memory engines.
func rwCluster(b *testing.B, nodes, n, r, w int) *voldemort.Client {
	b.Helper()
	clus := cluster.Uniform("bench", nodes, nodes*8, 0)
	def := (&cluster.StoreDef{
		Name: "bench", Replication: n, RequiredReads: r, RequiredWrites: w,
		ReadRepair: true,
	}).WithDefaults()
	strategy, err := ring.NewConsistent(clus, n)
	if err != nil {
		b.Fatal(err)
	}
	stores := make(map[int]voldemort.Store)
	for _, node := range clus.Nodes {
		stores[node.ID] = voldemort.NewEngineStore(storage.NewMemory("bench"), node.ID, nil)
	}
	routed, err := voldemort.NewRouted(voldemort.RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy, Stores: stores,
	})
	if err != nil {
		b.Fatal(err)
	}
	return voldemort.NewClient(routed, nil, 1)
}

// BenchmarkE1VoldemortReadWrite reproduces §II.C: the largest read-write
// cluster serves ~10K qps at 3 ms average with a 60/40 read/write mix.
// Shape to hold: tens of thousands of mixed ops/s, single-digit-ms averages.
func BenchmarkE1VoldemortReadWrite(b *testing.B) {
	c := rwCluster(b, 3, 2, 1, 1)
	const keys = 10000
	val := workload.Value(1, 1024)
	for i := 0; i < keys; i++ {
		if err := c.Put(workload.Key("k", i), val); err != nil {
			b.Fatal(err)
		}
	}
	mix := workload.NewMix(0.6, 42)
	keyGen := workload.NewUniform(keys, 43)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := workload.Key("k", keyGen.Next())
		if mix.Read() {
			if _, _, err := c.Get(k); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := c.Put(k, val); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// roStore builds a read-only store through the full Figure II.3 pipeline
// and returns a client over it.
func roStore(b *testing.B, entries, valueSize int) *voldemort.Client {
	b.Helper()
	clus := cluster.Uniform("ro", 3, 12, 0)
	strategy, err := ring.NewConsistent(clus, 2)
	if err != nil {
		b.Fatal(err)
	}
	engines := make([]*storage.ReadOnlyEngine, 3)
	targets := make([]roexport.NodeTarget, 3)
	for i := range engines {
		dir := filepath.Join(b.TempDir(), "store")
		e, err := storage.OpenReadOnly("pymk", dir)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { e.Close() })
		engines[i] = e
		targets[i] = roexport.NodeTarget{NodeID: i, StoreDir: dir, Swap: e.Swap, Rollback: e.Rollback}
	}
	kvs := make([]storage.KV, entries)
	for i := range kvs {
		kvs[i] = storage.KV{Key: workload.Key("m", i), Value: workload.Value(i, valueSize)}
	}
	ctl := &roexport.Controller{
		Builder: &roexport.Builder{Cluster: clus, Strategy: strategy, OutDir: b.TempDir(), Store: "pymk", Version: 1},
		Puller:  &roexport.Puller{},
		Targets: targets,
	}
	if err := ctl.Run(kvs); err != nil {
		b.Fatal(err)
	}
	def := (&cluster.StoreDef{Name: "pymk", Engine: cluster.EngineReadOnly,
		Replication: 2, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
	stores := make(map[int]voldemort.Store)
	for i, e := range engines {
		stores[i] = voldemort.NewEngineStore(e, i, nil)
	}
	routed, err := voldemort.NewRouted(voldemort.RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy, Stores: stores,
	})
	if err != nil {
		b.Fatal(err)
	}
	return voldemort.NewClient(routed, nil, 1)
}

// BenchmarkE2VoldemortReadOnly reproduces §II.C: the read-only cluster
// serves ~9K reads/s at sub-millisecond average ("People You May Know").
func BenchmarkE2VoldemortReadOnly(b *testing.B) {
	const entries = 20000
	c := roStore(b, entries, 512)
	gen := workload.NewUniform(entries, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := workload.Key("m", gen.Next())
		if _, ok, err := c.Get(k); err != nil || !ok {
			b.Fatalf("Get %s = (%v, %v)", k, ok, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkE3CompanyFollow reproduces §II.C's Company Follow stores:
// member→companies and company→members lists with Zipfian-distributed value
// sizes, read at ~4 ms average for large values in production. The server-
// side list.append transform feeds the lists; reads fetch whole lists.
func BenchmarkE3CompanyFollow(b *testing.B) {
	c := rwCluster(b, 3, 2, 1, 2)
	const members = 2000
	sizes := workload.NewSizeZipfian(1, 200, 0.99, 11)
	for m := 0; m < members; m++ {
		followCount := sizes.Next()
		list := make([]byte, 0, followCount*12)
		list = append(list, '[')
		for i := 0; i < followCount; i++ {
			if i > 0 {
				list = append(list, ',')
			}
			list = append(list, []byte(fmt.Sprintf(`"c%d"`, i))...)
		}
		list = append(list, ']')
		if err := c.Put(workload.Key("member", m), list); err != nil {
			b.Fatal(err)
		}
	}
	gen := workload.NewFastZipfian(members, 0.99, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(workload.Key("member", gen.Next())); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkE4StoreSizeSweep reproduces §II.C's claim that stores from 8 KB
// to multi-TB are served with stable latency: read latency should stay flat
// as the store grows (scaled 8 KB → 64 MB here).
func BenchmarkE4StoreSizeSweep(b *testing.B) {
	for _, totalBytes := range []int{8 << 10, 1 << 20, 8 << 20, 64 << 20} {
		b.Run(fmt.Sprintf("store=%dKB", totalBytes>>10), func(b *testing.B) {
			const valueSize = 1024
			entries := totalBytes / valueSize
			if entries == 0 {
				entries = 8
			}
			eng := storage.NewMemory("sweep")
			defer eng.Close()
			st := voldemort.NewEngineStore(eng, 0, nil)
			cl := voldemort.NewClient(st, nil, 1)
			for i := 0; i < entries; i++ {
				if err := cl.Put(workload.Key("k", i), workload.Value(i, valueSize)); err != nil {
					b.Fatal(err)
				}
			}
			gen := workload.NewUniform(entries, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.Get(workload.Key("k", gen.Next())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5RelayLatency reproduces §III.C: the relay's default serving
// path takes well under a millisecond.
func BenchmarkE5RelayLatency(b *testing.B) {
	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	payload := workload.Value(1, 512)
	for i := 1; i <= 50000; i++ {
		relay.Append(databus.Txn{SCN: int64(i), Events: []databus.Event{
			{Source: "profiles", Key: workload.Key("k", i), Payload: payload},
		}})
	}
	gen := workload.NewUniform(49000, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		since := int64(gen.Next())
		if _, err := relay.Read(since, 100, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5RelayThroughput measures sustained event ingestion (the paper
// buffers "hundreds of millions of Databus events" at "very low latency").
func BenchmarkE5RelayThroughput(b *testing.B) {
	relay := databus.NewRelay(databus.RelayConfig{MaxEvents: 1 << 20})
	defer relay.Close()
	payload := workload.Value(1, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relay.Append(databus.Txn{SCN: int64(i + 1), Events: []databus.Event{
			{Source: "s", Key: []byte("k"), Payload: payload},
		}})
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkE6ConsolidatedDelta reproduces §III.C's "fast playback":
// consolidating N updates to K keys returns K rows instead of N events,
// letting a lagging client return to the relay far sooner than full replay.
func BenchmarkE6ConsolidatedDelta(b *testing.B) {
	const updates, keys = 100000, 1000
	mkServer := func() *bootstrap.Server {
		s := bootstrap.New()
		payload := workload.Value(1, 200)
		for i := 1; i <= updates; i++ {
			s.OnEvent(databus.Event{
				SCN: int64(i), TxnID: int64(i), EndOfTxn: true, Source: "s",
				Key: workload.Key("k", i%keys), Payload: payload,
			})
		}
		return s
	}
	b.Run("consolidated", func(b *testing.B) {
		s := mkServer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			events, _, err := s.ConsolidatedDelta(0, nil)
			if err != nil || len(events) != keys {
				b.Fatalf("(%d, %v)", len(events), err)
			}
		}
		b.ReportMetric(float64(keys), "rows-delivered")
	})
	b.Run("full-replay", func(b *testing.B) {
		// Baseline: replaying every event (what a plain log would force).
		s := mkServer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			_, err := s.Snapshot(nil, func(databus.Event) error { n++; return nil })
			if err != nil {
				b.Fatal(err)
			}
			// snapshot before apply = the full log replayed
			if n < updates {
				b.Fatalf("replayed %d", n)
			}
		}
		b.ReportMetric(float64(updates), "rows-delivered")
	})
}

// BenchmarkE7Snapshot measures consistent-snapshot serving (scan + replay).
func BenchmarkE7Snapshot(b *testing.B) {
	s := bootstrap.New()
	payload := workload.Value(1, 200)
	for i := 1; i <= 50000; i++ {
		s.OnEvent(databus.Event{
			SCN: int64(i), TxnID: int64(i), EndOfTxn: true, Source: "s",
			Key: workload.Key("k", i%5000), Payload: payload,
		})
	}
	s.ApplyOnce()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := s.Snapshot(nil, func(databus.Event) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8RelayFanout reproduces §III.C's isolation property: hundreds of
// consumers per relay add no load on the source database. The metric
// source-pulls/consumer must *fall* as consumers grow; events flow to all.
func BenchmarkE8RelayFanout(b *testing.B) {
	for _, consumers := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			src := databus.NewLogSource()
			relay := databus.NewRelay(databus.RelayConfig{})
			defer relay.Close()
			payload := workload.Value(1, 256)
			const events = 2000
			for i := 0; i < events; i++ {
				src.Commit(databus.Event{Source: "s", Key: workload.Key("k", i), Payload: payload})
			}
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				relay.PullOnce(src, events+10) // one source pull per round
				done := make(chan int64, consumers)
				for c := 0; c < consumers; c++ {
					go func() {
						var got int64
						var since int64
						for got < events {
							evs, err := relay.Read(since, 500, nil)
							if err != nil {
								break
							}
							for _, e := range evs {
								since = e.SCN
							}
							got += int64(len(evs))
						}
						done <- got
					}()
				}
				var total int64
				for c := 0; c < consumers; c++ {
					total += <-done
				}
				if total != int64(events*consumers) {
					b.Fatalf("delivered %d, want %d", total, events*consumers)
				}
			}
			b.StopTimer()
			pulls := relay.SourcePulls()
			b.ReportMetric(float64(pulls)/float64(b.N)/float64(consumers), "source-pulls/consumer")
			b.ReportMetric(float64(relay.EventsServed())/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkFII1Engines exercises the pluggable-engine promise of Figure
// II.1: the same workload through every engine behind the same interface.
func BenchmarkFII1Engines(b *testing.B) {
	const entries = 5000
	val := workload.Value(1, 1024)
	load := func(b *testing.B, eng storage.Engine) *voldemort.Client {
		cl := voldemort.NewClient(voldemort.NewEngineStore(eng, 0, nil), nil, 1)
		for i := 0; i < entries; i++ {
			if err := cl.Put(workload.Key("k", i), val); err != nil {
				b.Fatal(err)
			}
		}
		return cl
	}
	run := func(b *testing.B, cl *voldemort.Client) {
		gen := workload.NewUniform(entries, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cl.Get(workload.Key("k", gen.Next())); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) {
		eng := storage.NewMemory("e")
		defer eng.Close()
		run(b, load(b, eng))
	})
	b.Run("bitcask", func(b *testing.B) {
		eng, err := storage.OpenBitcask("e", b.TempDir(), 1000)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		run(b, load(b, eng))
	})
	b.Run("readonly", func(b *testing.B) {
		kvs := make([]storage.KV, entries)
		for i := range kvs {
			kvs[i] = storage.KV{Key: workload.Key("k", i), Value: val}
		}
		dir := b.TempDir()
		if err := storage.WriteReadOnlyFiles(filepath.Join(dir, "version-0"), kvs); err != nil {
			b.Fatal(err)
		}
		eng, err := storage.OpenReadOnly("e", dir)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		cl := voldemort.NewClient(voldemort.NewEngineStore(eng, 0, nil), nil, 1)
		gen := workload.NewUniform(entries, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cl.Get(workload.Key("k", gen.Next())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFII2Transforms quantifies Figure II.2's transformed operations
// over a real socket server: appending to a list server-side (one request,
// element-sized payload) versus the client round trip (fetch the whole
// list, parse, append, ship the whole list back) — "saving a client round
// trip and network bandwidth".
func BenchmarkFII2Transforms(b *testing.B) {
	mkSocketClient := func(b *testing.B) *voldemort.Client {
		clus := cluster.Uniform("tr", 1, 4, 0)
		srv, err := voldemort.NewServer(voldemort.ServerConfig{NodeID: 0, Cluster: clus, DataDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		def := (&cluster.StoreDef{Name: "tr", Replication: 1, RequiredReads: 1, RequiredWrites: 1}).WithDefaults()
		if err := srv.AddStore(def); err != nil {
			b.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		ss := voldemort.DialStore("tr", addr, time.Second)
		b.Cleanup(func() { ss.Close() })
		return voldemort.NewClient(ss, nil, 1)
	}
	// Lists are pre-warmed to `warm` elements and appends rotate over many
	// keys, so list size stays ~constant regardless of b.N and both modes
	// compare at the same payload size.
	const warm = 500
	const keyFan = 256
	elem := []byte(`"company-x"`)
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("list-%d", i%keyFan)) }
	warmUp := func(b *testing.B, c *voldemort.Client) {
		var sb []byte
		sb = append(sb, '[')
		for i := 0; i < warm; i++ {
			if i > 0 {
				sb = append(sb, ',')
			}
			sb = append(sb, elem...)
		}
		sb = append(sb, ']')
		for k := 0; k < keyFan; k++ {
			if err := c.Put(keyOf(k), sb); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("server-side-append", func(b *testing.B) {
		c := mkSocketClient(b)
		warmUp(b, c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.PutWithTransform(keyOf(i), elem, voldemort.Transform{Name: "list.append"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("client-round-trip", func(b *testing.B) {
		c := mkSocketClient(b)
		warmUp(b, c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// fetch the whole list, parse, append, write the whole list back
			full, _, err := c.Get(keyOf(i))
			if err != nil {
				b.Fatal(err)
			}
			var list []json.RawMessage
			if err := json.Unmarshal(full, &list); err != nil {
				b.Fatal(err)
			}
			list = append(list, json.RawMessage(elem))
			next, err := json.Marshal(list)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Put(keyOf(i), next); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE15ZoneRouting reproduces §II.B's multi-datacenter routing: with
// an injected inter-zone delay, zone-aware routing answers reads from the
// local zone while plain routing pays cross-zone latency on ~half the
// requests.
func BenchmarkE15ZoneRouting(b *testing.B) {
	const interZone = 2 * time.Millisecond
	build := func(b *testing.B, zoned bool) *voldemort.Client {
		clus := cluster.UniformZoned("z", 6, 24, 2, 0)
		// PreferredReads=1: exactly one replica is contacted per read, chosen
		// by preference order — the case where replica ordering decides
		// whether the request crosses the zone boundary.
		def := (&cluster.StoreDef{Name: "z", Replication: 2, RequiredReads: 1,
			PreferredReads: 1, RequiredWrites: 2}).WithDefaults()
		var strategy ring.Strategy
		var err error
		if zoned {
			strategy, err = ring.NewZoned(clus, 2, 2, 0)
		} else {
			strategy, err = ring.NewConsistent(clus, 2)
		}
		if err != nil {
			b.Fatal(err)
		}
		stores := make(map[int]voldemort.Store)
		for _, n := range clus.Nodes {
			var s voldemort.Store = voldemort.NewEngineStore(storage.NewMemory("z"), n.ID, nil)
			if n.ZoneID != 0 { // client lives in zone 0
				s = &voldemort.LatencyStore{Inner: s, Delay: interZone}
			}
			stores[n.ID] = s
		}
		routed, err := voldemort.NewRouted(voldemort.RoutedConfig{
			Def: def, Cluster: clus, Strategy: strategy, Stores: stores, Timeout: time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		c := voldemort.NewClient(routed, nil, 1)
		for i := 0; i < 500; i++ {
			if err := c.Put(workload.Key("k", i), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	for _, mode := range []struct {
		name  string
		zoned bool
	}{{"zone-aware", true}, {"plain-ring", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := build(b, mode.zoned)
			gen := workload.NewUniform(500, 9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.Get(workload.Key("k", gen.Next())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
