// Goroutine-leak gate for the root-package e2e suites (consistency_e2e,
// obs_e2e, verify harness): after every test in the package has run and
// shut its rigs down, no test-spawned goroutine may still be alive.
//
// The check is goleak-style but stdlib-only: let the package's tests run,
// give asynchronous teardown a settling window, then parse the full stack
// dump and fail on any goroutine that is neither part of the runtime/testing
// machinery nor this main goroutine. Leaks found here are real — a server
// Close that doesn't join its accept loop, a pusher left running — and were
// previously invisible because `go test` exits without looking back.
package datainfra

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := leakedGoroutines(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak check FAILED: %d goroutines still alive after tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// leakAllowlist matches goroutines that are allowed to outlive the tests:
// the runtime's own workers, the testing framework, and stdlib machinery
// that parks background goroutines by design.
var leakAllowlist = []string{
	"testing.(*M).",
	"testing.tRunner",
	"testing.runTests",
	"runtime.goexit",
	"runtime_mcall",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"signal.loop",
	"os/signal.",
	"runtime.ensureSigM",
	"net/http.(*persistConn).", // http.Transport idle conns; reaped by the runtime
	"net/http.setRequestCancel",
	"internal/poll.runtime_pollWait", // only as part of an allowed parent above
	"leakedGoroutines",               // this checker itself
}

// leakedGoroutines polls the stack dump until only allowlisted goroutines
// remain or the settle deadline passes, then returns the offenders. Polling
// matters: rig teardown is asynchronous (socket pools draining, pushers
// exiting) and a goroutine observed mid-exit is not a leak.
func leakedGoroutines(settle time.Duration) []string {
	deadline := time.Now().Add(settle)
	var leaked []string
	for {
		leaked = leaked[:0]
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		for _, g := range strings.Split(string(buf[:n]), "\n\n") {
			if g == "" || strings.HasPrefix(g, "goroutine 1 ") {
				continue // the main goroutine (running TestMain)
			}
			allowed := false
			for _, pat := range leakAllowlist {
				if strings.Contains(g, pat) {
					allowed = true
					break
				}
			}
			if !allowed {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return append([]string(nil), leaked...)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
