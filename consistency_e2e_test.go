// Generator-driven consistency verification (`make verify`): seeded workloads
// drive concurrent clients against each of the four systems under PR 1's
// deterministic fault injector, every invocation and response is recorded
// into a concurrent history, and the history is checked against the system's
// formal model from internal/consistency — linearizability and the
// eventual+causal relaxation for Voldemort, per-key timeline consistency for
// Espresso, offset contiguity/ordering for Kafka, windowed SCN monotonicity
// for Databus. The scripts are deterministic per seed; only the interleaving
// is not, and the checkers accept any legal interleaving — so a failure here
// is a real consistency violation, not a flaky schedule. See DESIGN.md §7.
//
// Change the workload with VERIFY_SEED (default 1): VERIFY_SEED=42 make verify
package datainfra

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/consistency"
	"datainfra/internal/consistency/gen"
	"datainfra/internal/databus"
	"datainfra/internal/espresso"
	"datainfra/internal/failure"
	"datainfra/internal/kafka"
	"datainfra/internal/resilience"
	"datainfra/internal/ring"
	"datainfra/internal/schema"
	"datainfra/internal/storage"
	"datainfra/internal/versioned"
	"datainfra/internal/voldemort"
)

func verifySeed(t testing.TB) int64 {
	t.Helper()
	s := os.Getenv("VERIFY_SEED")
	if s == "" {
		return 1
	}
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("VERIFY_SEED=%q is not an integer: %v", s, err)
	}
	return seed
}

func verifyRetryPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:    12,
		InitialBackoff: 100 * time.Microsecond,
		MaxBackoff:     2 * time.Millisecond,
	}
}

// --- Voldemort ---------------------------------------------------------------

// voldemortRig is a 3-node N=3/R=2/W=2 quorum cluster whose per-node engine
// stores fault according to the injector's plan, with hinted handoff, read
// repair and a bannage detector probing through the same faulty path.
type voldemortRig struct {
	stores   map[int]voldemort.Store
	detector *failure.SuccessRatio
	slop     *voldemort.SlopPusher
	routed   *voldemort.RoutedStore
	inj      *resilience.DeterministicInjector
}

func newVoldemortRig(t *testing.T, seed int64, plan resilience.FaultPlan) *voldemortRig {
	t.Helper()
	clus := cluster.Uniform("verify", 3, 12, 0)
	def := (&cluster.StoreDef{
		Name: "verify", Replication: 3, RequiredReads: 2, RequiredWrites: 2,
		ReadRepair: true, HintedHandoff: true,
	}).WithDefaults()
	strategy, err := ring.NewConsistent(clus, 3)
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(seed)
	inj.Default(plan)

	rig := &voldemortRig{stores: make(map[int]voldemort.Store), inj: inj}
	for _, node := range clus.Nodes {
		// The hot-set read cache runs in the verify harness so the
		// linearizability/causal checkers cover cached reads: a stale
		// cache hit would surface as a consistency violation here.
		es := voldemort.NewEngineStore(storage.NewMemory("verify"), node.ID, nil).
			EnableCache(1 << 20)
		rig.stores[node.ID] = &voldemort.FaultStore{
			Inner: es, Injector: inj, Op: fmt.Sprintf("node%d", node.ID),
		}
	}

	prober := failure.ProberFunc(func(node int) error {
		_, err := rig.stores[node].Get([]byte("__probe__"), nil)
		return err
	})
	rig.detector = failure.NewSuccessRatio(failure.SuccessRatioConfig{
		Threshold: 0.6, MinRequests: 10, Window: time.Second,
		ProbeInterval: 2 * time.Millisecond,
	}, prober)
	t.Cleanup(rig.detector.Close)

	rig.slop = voldemort.NewSlopPusher(func(node int, store string) (voldemort.Store, bool) {
		s, ok := rig.stores[node]
		return s, ok
	}, rig.detector, 0)

	rig.routed, err = voldemort.NewRouted(voldemort.RoutedConfig{
		Def: def, Cluster: clus, Strategy: strategy,
		Detector: rig.detector, Stores: rig.stores, Slop: rig.slop,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

// heal disarms the injector, waits for banned nodes to recover through the
// async probe and drains the hint queue, so post-heal reads see a converged
// cluster.
func (rig *voldemortRig) heal(t *testing.T) {
	t.Helper()
	rig.inj.Disarm()
	deadline := time.Now().Add(10 * time.Second)
	for len(rig.detector.Banned()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("banned nodes did not recover via probe: %v", rig.detector.Banned())
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline = time.Now().Add(10 * time.Second)
	for rig.slop.Pending() > 0 {
		rig.slop.DeliverOnce()
		if time.Now().After(deadline) {
			t.Fatalf("%d slops stuck in queue", rig.slop.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// quorumClient adapts the routed store to the generator's Client interface,
// classifying outcomes the way the checkers require: a failed pre-put read
// means the write was provably never issued (OutcomeFailed); a failed quorum
// put may still have reached some replicas (OutcomeUnknown) — partial writes
// surfacing later is Dynamo behaviour, not a violation.
type quorumClient struct {
	routed *voldemort.RoutedStore
	ts     *atomic.Int64 // clock-entry timestamps (logical, shared)
	acks   *atomic.Int64
}

func (q quorumClient) Read(key string) ([]consistency.Observed, bool, consistency.Outcome) {
	vs, err := q.routed.Get([]byte(key), nil)
	if err != nil {
		return nil, false, consistency.OutcomeUnknown
	}
	obs := make([]consistency.Observed, 0, len(vs))
	for _, v := range vs {
		obs = append(obs, consistency.Observed{Value: string(v.Value), Clock: v.Clock})
	}
	return obs, len(obs) > 0, consistency.OutcomeOK
}

func (q quorumClient) Write(op *consistency.PendingOp, key, value string) consistency.Outcome {
	k := []byte(key)
	vs, err := q.routed.Get(k, nil)
	if err != nil {
		return consistency.OutcomeFailed // nothing was sent to any replica
	}
	v := versioned.New([]byte(value))
	for _, old := range vs {
		v.Clock = v.Clock.Merge(old.Clock)
	}
	v.Clock = v.Clock.Incremented(q.routed.MasterNode(k), q.ts.Add(1))
	op.SetClock(v.Clock)
	if err := q.routed.Put(k, v, nil); err != nil {
		return consistency.OutcomeUnknown
	}
	q.acks.Add(1)
	return consistency.OutcomeOK
}

// TestVerifyVoldemortLinearizable runs single-writer-per-key workloads under
// latency-only faults. Without drops a quorum write is fully acknowledged or
// not issued, read repair is reliable, and single-writer keys never fork
// siblings — each key behaves as a linearizable register, which the Wing &
// Gong checker verifies.
func TestVerifyVoldemortLinearizable(t *testing.T) {
	seed := verifySeed(t)
	rig := newVoldemortRig(t, seed, resilience.FaultPlan{
		LatencyProb: 0.3, Latency: 200 * time.Microsecond,
	})
	rec := consistency.NewRecorder()
	var ts, acks atomic.Int64
	cfg := gen.Config{Seed: seed, Clients: 4, Ops: 60, Keys: 8, SingleWriterKeys: 8}
	gen.Run(rec, cfg, func(i int) gen.Client {
		return quorumClient{routed: rig.routed, ts: &ts, acks: &acks}
	})
	if rig.inj.Total() == 0 {
		t.Fatal("no faults injected; verify run is vacuous")
	}
	if acks.Load() == 0 {
		t.Fatal("no write ever acknowledged; verify run is vacuous")
	}
	h := rec.History()
	if err := consistency.CheckLinearizable(h); err != nil {
		t.Fatalf("voldemort history not linearizable: %v", err)
	}
	if err := consistency.CheckCausalEventual(h); err != nil {
		t.Fatalf("voldemort history failed the causal relaxation: %v", err)
	}
	t.Logf("linearizable: %d ops, %d acked writes under %s", rec.Len(), acks.Load(), rig.inj)
}

// TestVerifyVoldemortCausalEventual runs mixed shared-key workloads under
// drops and errors — the regime where Voldemort is not a linearizable
// register (partial writes flicker, concurrent writers fork siblings) but
// the R+W>N contract still promises no phantoms, acked-write visibility and
// sibling maximality. After healing, a final read of every key is appended
// to the history and checked with everything else.
func TestVerifyVoldemortCausalEventual(t *testing.T) {
	seed := verifySeed(t)
	rig := newVoldemortRig(t, seed, resilience.FaultPlan{
		DropProb: 0.12, ErrProb: 0.08,
		LatencyProb: 0.05, Latency: 200 * time.Microsecond,
	})
	rec := consistency.NewRecorder()
	var ts, acks atomic.Int64
	cfg := gen.Config{Seed: seed, Clients: 4, Ops: 60, Keys: 6, SingleWriterKeys: 2}
	gen.Run(rec, cfg, func(i int) gen.Client {
		return quorumClient{routed: rig.routed, ts: &ts, acks: &acks}
	})
	if rig.inj.Total() == 0 {
		t.Fatal("no faults injected; verify run is vacuous")
	}
	if acks.Load() == 0 {
		t.Fatal("no write ever acknowledged; verify run is vacuous")
	}

	rig.heal(t)
	q := quorumClient{routed: rig.routed, ts: &ts, acks: &acks}
	for key := range rec.History().PerKey() {
		p := rec.Invoke(cfg.Clients, consistency.KindRead, key, "")
		obs, found, outcome := q.Read(key)
		p.Return(outcome, found, obs...)
	}

	h := rec.History()
	if err := consistency.CheckCausalEventual(h); err != nil {
		t.Fatalf("voldemort history violated the eventual+causal model: %v", err)
	}
	t.Logf("causal: %d ops, %d acked writes under %s", rec.Len(), acks.Load(), rig.inj)
}

// --- Espresso ----------------------------------------------------------------

// espressoTimelineConsumer applies the relay stream to a slave node and
// records the apply order per partition; OnEvent flakes through the injector
// to exercise the client's redelivery path.
type espressoTimelineConsumer struct {
	slave *espresso.Node
	inj   *resilience.DeterministicInjector

	mu      sync.Mutex
	applied map[int][]consistency.TimelineEntry
}

func timelineEtag(payload []byte) (string, error) {
	var cr struct {
		Etag string `json:"etag"`
	}
	if err := json.Unmarshal(payload, &cr); err != nil {
		return "", err
	}
	return cr.Etag, nil
}

func (c *espressoTimelineConsumer) OnEvent(e databus.Event) error {
	if err := c.inj.Inject("espresso.consumer"); err != nil {
		return err
	}
	if err := c.slave.ApplyReplicated(e); err != nil {
		return err
	}
	etag, err := timelineEtag(e.Payload)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.applied[e.Partition] = append(c.applied[e.Partition], consistency.TimelineEntry{
		SCN: e.SCN, Key: string(e.Key), Etag: etag,
	})
	c.mu.Unlock()
	return nil
}

func (c *espressoTimelineConsumer) OnCheckpoint(int64) {}

// flakyEventReader routes relay reads through the fault injector.
type flakyEventReader struct {
	inner databus.EventReader
	inj   *resilience.DeterministicInjector
	op    string
}

func (f *flakyEventReader) ReadBlocking(sinceSCN int64, maxEvents int, fil *databus.Filter, timeout time.Duration) ([]databus.Event, error) {
	if err := f.inj.Inject(f.op); err != nil {
		return nil, err
	}
	return f.inner.ReadBlocking(sinceSCN, maxEvents, fil, timeout)
}

// TestVerifyEspressoTimeline drives concurrent writers against a master
// node, replicates its binlog through a relay and a flaky Databus client
// into a slave, and checks the per-partition timelines: commit order on the
// master, no invented rows, per-key monotonicity and completeness on the
// slave — then master/slave row equivalence once the slave caught up.
func TestVerifyEspressoTimeline(t *testing.T) {
	seed := verifySeed(t)
	const partitions = 4
	db, err := espresso.NewDatabase(
		espresso.DatabaseSchema{Name: "Verify", NumPartitions: partitions, Replicas: 2},
		[]*espresso.TableSchema{{Name: "Doc", KeyParts: []string{"id"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SetDocumentSchema("Doc", schema.MustParse(
		`{"name":"Doc","fields":[{"name":"val","type":"string"}]}`)); err != nil {
		t.Fatal(err)
	}

	binlog := databus.NewLogSource()
	// Doc caches on: the timeline check must hold with caching enabled
	// (commits and replicated applies fence the cached rows).
	master := espresso.NewNode("master", db, binlog).EnableDocCache(1 << 20)
	for p := 0; p < partitions; p++ {
		master.SetRole(p, true)
	}
	slave := espresso.NewNode("slave", db, databus.NewLogSource()).EnableDocCache(1 << 20)

	// Concurrent writers: unique values over a small key space, so keys are
	// rewritten and per-key ordering is actually exercised.
	const writers, writesPer, docs = 4, 40, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				key := espresso.DocKey{Table: "Doc", Parts: []string{fmt.Sprintf("d%d", (w*writesPer+i)%docs)}}
				if _, err := master.Put(key, map[string]any{"val": fmt.Sprintf("w%d-%d", w, i)}, ""); err != nil {
					t.Errorf("master put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	relay.AttachSource(binlog, time.Millisecond)

	inj := resilience.NewInjector(seed)
	inj.Plan("relay.read", resilience.FaultPlan{DropProb: 0.3})
	inj.Plan("espresso.consumer", resilience.FaultPlan{ErrProb: 0.15})

	cons := &espressoTimelineConsumer{
		slave: slave, inj: inj,
		applied: make(map[int][]consistency.TimelineEntry),
	}
	client, err := databus.NewClient(databus.ClientConfig{
		Relay:      &flakyEventReader{inner: relay, inj: inj, op: "relay.read"},
		Consumer:   cons,
		BatchSize:  7,
		Retries:    20,
		Retry:      verifyRetryPolicy(),
		PollExpiry: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	last := binlog.LastSCN()
	deadline := time.Now().Add(10 * time.Second)
	for client.SCN() < last {
		if _, err := client.Poll(); err != nil {
			t.Fatalf("poll at SCN %d: %v", client.SCN(), err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("slave stuck at SCN %d of %d", client.SCN(), last)
		}
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; verify run is vacuous")
	}

	// Master commit order straight from the binlog.
	txns, err := binlog.Pull(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	masterTimeline := make(map[int][]consistency.TimelineEntry)
	for _, txn := range txns {
		for _, e := range txn.Events {
			etag, err := timelineEtag(e.Payload)
			if err != nil {
				t.Fatal(err)
			}
			masterTimeline[e.Partition] = append(masterTimeline[e.Partition], consistency.TimelineEntry{
				SCN: e.SCN, Key: string(e.Key), Etag: etag,
			})
		}
	}

	cons.mu.Lock()
	defer cons.mu.Unlock()
	total := 0
	for p := 0; p < partitions; p++ {
		tl := consistency.Timeline{Partition: p, Master: masterTimeline[p], Replica: cons.applied[p]}
		if err := consistency.CheckEspressoTimeline(tl); err != nil {
			t.Fatal(err)
		}
		total += len(cons.applied[p])

		mRows, sRows := master.PartitionRows(p), slave.PartitionRows(p)
		if len(mRows) != len(sRows) {
			t.Fatalf("partition %d: master has %d rows, slave %d", p, len(mRows), len(sRows))
		}
		for k, mv := range mRows {
			sv, ok := sRows[k]
			if !ok || mv.Etag != sv.Etag || string(mv.Val) != string(sv.Val) {
				t.Fatalf("partition %d: row %q diverged between master and slave", p, k)
			}
		}
	}
	if total < writers*writesPer {
		t.Fatalf("slave applied %d events, master committed %d", total, writers*writesPer)
	}
	t.Logf("timeline: %d commits replicated under %s", writers*writesPer, inj)
}

// --- Kafka -------------------------------------------------------------------

// startVerifyProxy forwards TCP connections to target, dropping some at
// accept time. Drops land before a complete request is forwarded — the
// broker only acts on full length-prefixed frames — so retries through the
// proxy stay duplicate-free and the log must equal the produce sequence
// exactly.
func startVerifyProxy(t *testing.T, target string, inj *resilience.DeterministicInjector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if inj.Inject("proxy.accept") != nil {
				c.Close()
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				go func() { _, _ = io.Copy(up, c) }()
				_, _ = io.Copy(c, up)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestVerifyKafkaLog produces a seeded payload sequence from concurrent
// producers through a connection-dropping proxy, consumes the partition back
// sequentially, and checks the log contract: unique acked offsets,
// monotone consumption, and consumption equal to the produce order with no
// gap at the tail.
func TestVerifyKafkaLog(t *testing.T) {
	seed := verifySeed(t)
	b, err := kafka.NewBroker(0, t.TempDir(), kafka.BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(seed)
	inj.Plan("proxy.accept", resilience.FaultPlan{DropProb: 0.4})
	proxyAddr := startVerifyProxy(t, addr, inj)

	payloads := gen.Payloads(seed, "kafka", 60)
	const producers = 3
	var mu sync.Mutex
	var produced []consistency.ProducedMsg
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(payloads); i += producers {
				// A fresh connection per produce: every message rolls the
				// accept-drop fault, and the retry layer re-dials through it.
				// An accept-dropped request provably never reached the broker,
				// so re-producing after an exhausted retry budget (or an open
				// circuit breaker) cannot duplicate.
				deadline := time.Now().Add(10 * time.Second)
				for {
					rb := kafka.DialBroker(proxyAddr, time.Second)
					rb.SetRetryPolicy(verifyRetryPolicy())
					off, err := rb.Produce("verify", 0, kafka.NewMessageSet([]byte(payloads[i])))
					rb.Close()
					if err == nil {
						mu.Lock()
						produced = append(produced, consistency.ProducedMsg{Offset: off, Payload: payloads[i]})
						mu.Unlock()
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("produce %d never acknowledged through drops: %v", i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if inj.Total() == 0 {
		t.Fatal("no connections dropped; verify run is vacuous")
	}

	rb := kafka.DialBroker(proxyAddr, time.Second)
	defer rb.Close()
	rb.SetRetryPolicy(verifyRetryPolicy())
	var earliest, latest int64
	deadline := time.Now().Add(10 * time.Second)
	for {
		earliest, latest, err = rb.Offsets("verify", 0)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("offsets through drops: %v", err)
		}
	}

	var consumed []consistency.ConsumedMsg
	offset := earliest
	for offset < latest {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d messages, stuck at offset %d of %d", len(consumed), offset, latest)
		}
		chunk, err := rb.Fetch("verify", 0, offset, 1<<20)
		if err != nil {
			continue // dropped connection; the deadline bounds the retries
		}
		msgs, err := kafka.Decode(chunk, offset)
		if err != nil {
			t.Fatalf("decode at offset %d: %v", offset, err)
		}
		for _, m := range msgs {
			consumed = append(consumed, consistency.ConsumedMsg{NextOffset: m.NextOffset, Payload: string(m.Payload)})
			offset = m.NextOffset
		}
	}

	err = consistency.CheckKafkaLog(consistency.KafkaPartition{
		Topic: "verify", Partition: 0,
		Earliest: earliest, Latest: latest,
		Produced: produced, Consumed: consumed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kafka log: %d messages through %s", len(payloads), inj)
}

// faultPeer routes a broker's client surface through the injector: a
// "peer.produce" fault is a request that provably never reached the broker, a
// "peer.ack" fault is an append whose acknowledgment was lost — the retry
// then duplicates, which is exactly the at-least-once behaviour the
// replicated checker must tolerate without ever tolerating loss.
type faultPeer struct {
	kafka.ClusterPeer
	inj *resilience.DeterministicInjector
}

func (f faultPeer) Produce(topic string, partition int, set kafka.MessageSet) (int64, error) {
	if err := f.inj.Inject("peer.produce"); err != nil {
		return 0, err
	}
	off, err := f.ClusterPeer.Produce(topic, partition, set)
	if err != nil {
		return 0, err
	}
	if err := f.inj.Inject("peer.ack"); err != nil {
		return 0, err
	}
	return off, nil
}

func (f faultPeer) Fetch(topic string, partition int, offset int64, maxBytes int) ([]byte, error) {
	if err := f.inj.Inject("peer.fetch"); err != nil {
		return nil, err
	}
	return f.ClusterPeer.Fetch(topic, partition, offset, maxBytes)
}

func (f faultPeer) FetchWait(topic string, partition int, offset int64, maxBytes int, wait time.Duration) ([]byte, error) {
	if err := f.inj.Inject("peer.fetch"); err != nil {
		return nil, err
	}
	return f.ClusterPeer.FetchWait(topic, partition, offset, maxBytes, wait)
}

// TestVerifyKafkaReplicated drives seeded concurrent producers against a
// 3-broker ISR-replicated partition through injected faults, kills the
// elected leader mid-produce (the kill point is VERIFY_SEED-driven), and
// checks the replication contract on what the promoted leader serves: every
// high-watermark-acked message present at exactly its acked offset, unique
// ack offsets, gapless monotone consumption — loss-free failover. Unacked
// duplicates from retried produces are legal; lost acked data is not.
func TestVerifyKafkaReplicated(t *testing.T) {
	seed := verifySeed(t)
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	c, err := kafka.NewReplicatedCluster(dirs, kafka.BrokerConfig{PartitionsPerTopic: 1}, kafka.ReplicatedConfig{
		Cluster: "verify", Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 300 * time.Millisecond,
		AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.AddTopic("verify"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR("verify", 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(seed)
	inj.Plan("peer.produce", resilience.FaultPlan{DropProb: 0.15})
	inj.Plan("peer.ack", resilience.FaultPlan{ErrProb: 0.05})
	inj.Plan("peer.fetch", resilience.FaultPlan{DropProb: 0.1})
	client := kafka.NewRoutedClient(c.ZK, "verify", func(instance string) (kafka.ClusterPeer, error) {
		rb := c.Broker(instance)
		if rb == nil {
			return nil, fmt.Errorf("broker %q is dead", instance)
		}
		return faultPeer{ClusterPeer: rb, inj: inj}, nil
	})
	defer client.Close()
	client.SetRetryPolicy(verifyRetryPolicy())

	payloads := gen.Payloads(seed, "kafka-isr", 60)
	killAfter := int64(15 + seed%20) // seeded mid-produce kill point

	var mu sync.Mutex
	var acked []consistency.ProducedMsg
	var ackedCount atomic.Int64
	killed := make(chan string, 1)
	go func() {
		for ackedCount.Load() < killAfter {
			time.Sleep(time.Millisecond)
		}
		leader, err := c.LeaderOf("verify", 0)
		if err == nil {
			c.Kill(leader)
			killed <- leader
		} else {
			killed <- ""
		}
	}()

	const producers = 3
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(payloads); i += producers {
				deadline := time.Now().Add(20 * time.Second)
				for {
					off, err := client.Produce("verify", 0, kafka.NewMessageSet([]byte(payloads[i])))
					if err == nil {
						mu.Lock()
						acked = append(acked, consistency.ProducedMsg{Offset: off, Payload: payloads[i]})
						mu.Unlock()
						ackedCount.Add(1)
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("produce %d never acknowledged across the failover: %v", i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	deadKilled := <-killed
	if deadKilled == "" {
		t.Fatal("leader kill never happened; failover was not exercised")
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; verify run is vacuous")
	}

	// The promoted leader must serve every acked message at its acked offset.
	newLeader, err := c.LeaderOf("verify", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newLeader == deadKilled {
		t.Fatalf("leader %q still recorded after its death", deadKilled)
	}
	var earliest, latest int64
	deadline := time.Now().Add(15 * time.Second)
	for {
		earliest, latest, err = client.Offsets("verify", 0)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("offsets after failover: %v", err)
		}
	}
	var consumed []consistency.ConsumedMsg
	offset := earliest
	for offset < latest {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d messages, stuck at offset %d of %d", len(consumed), offset, latest)
		}
		chunk, err := client.Fetch("verify", 0, offset, 1<<20)
		if err != nil {
			continue // injected fault; the deadline bounds the retries
		}
		msgs, err := kafka.Decode(chunk, offset)
		if err != nil {
			t.Fatalf("decode at offset %d: %v", offset, err)
		}
		for _, m := range msgs {
			consumed = append(consumed, consistency.ConsumedMsg{NextOffset: m.NextOffset, Payload: string(m.Payload)})
			offset = m.NextOffset
		}
	}

	err = consistency.CheckKafkaReplicated(consistency.ReplicatedPartition{
		Topic: "verify", Partition: 0,
		Start: earliest, End: latest,
		Acked: acked, Consumed: consumed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kafka isr: %d acked (%d consumed incl. retry duplicates), leader %s killed after %d acks under %s",
		len(acked), len(consumed), deadKilled, killAfter, inj)
}

// newVerifySourceCluster builds one datacenter-local 3-broker ISR cluster
// with a single-partition topic, the source side of a mirrored topology.
func newVerifySourceCluster(t *testing.T, name, topic string) *kafka.ReplicatedCluster {
	t.Helper()
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	c, err := kafka.NewReplicatedCluster(dirs, kafka.BrokerConfig{PartitionsPerTopic: 1}, kafka.ReplicatedConfig{
		Cluster: name, Replicas: 3, MinISR: 2,
		FetchWait: 20 * time.Millisecond, LagTimeout: 300 * time.Millisecond,
		AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.AddTopic(topic); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForISR(topic, 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// newFaultRoutedClient routes a cluster's client surface through the shared
// injector, so producers and mirrors alike see dropped requests, lost acks
// and failed fetches.
func newFaultRoutedClient(t *testing.T, c *kafka.ReplicatedCluster, name string, inj *resilience.DeterministicInjector) *kafka.RoutedClient {
	t.Helper()
	client := kafka.NewRoutedClient(c.ZK, name, func(instance string) (kafka.ClusterPeer, error) {
		rb := c.Broker(instance)
		if rb == nil {
			return nil, fmt.Errorf("broker %q is dead", instance)
		}
		return faultPeer{ClusterPeer: rb, inj: inj}, nil
	})
	t.Cleanup(client.Close)
	client.SetRetryPolicy(verifyRetryPolicy())
	return client
}

// drainMirrored sequentially consumes the aggregate partition and decodes the
// global-ordering envelopes into the checker's observation type.
func drainMirrored(t *testing.T, dst *kafka.Broker, topic string) []consistency.MirroredMsg {
	t.Helper()
	earliest, latest, err := dst.Offsets(topic, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out []consistency.MirroredMsg
	for off := earliest; off < latest; {
		chunk, err := dst.Fetch(topic, 0, off, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := kafka.Decode(chunk, off)
		if err != nil {
			t.Fatalf("decode aggregate log at offset %d: %v", off, err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			env, err := kafka.DecodeEnvelope(m.Payload)
			if err != nil {
				t.Fatalf("aggregate message at offset %d: %v", off, err)
			}
			out = append(out, consistency.MirroredMsg{
				Origin: env.Origin, Partition: env.Partition,
				Seq: env.Seq, Sub: env.Sub, Payload: string(env.Payload),
			})
			off = m.NextOffset
		}
	}
	return out
}

// TestVerifyKafkaMirrored runs the full mirrored topology under chaos: two
// datacenter-local ISR clusters ("east", "west") feed one aggregate broker
// through global-ordering MirrorMakers whose routed clients see injected
// drops, lost acks and failed fetches. Mid-produce, east's elected leader is
// killed (seeded kill point) AND east's mirror is killed and restarted from
// its checkpoint file (seeded restart point). The aggregate log must then
// hold every message either source HW-acked — no loss across the failover or
// the mirror restart — with per-origin causal order intact and duplicates
// byte-identical, which CheckKafkaMirrored verifies.
func TestVerifyKafkaMirrored(t *testing.T) {
	seed := verifySeed(t)
	const topic = "mirror"
	east := newVerifySourceCluster(t, "east", topic)
	west := newVerifySourceCluster(t, "west", topic)
	dst, err := kafka.NewBroker(0, t.TempDir(), kafka.BrokerConfig{PartitionsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Close() })

	inj := resilience.NewInjector(seed)
	inj.Plan("peer.produce", resilience.FaultPlan{DropProb: 0.15})
	inj.Plan("peer.ack", resilience.FaultPlan{ErrProb: 0.05})
	inj.Plan("peer.fetch", resilience.FaultPlan{DropProb: 0.1})

	clients := map[string]*kafka.RoutedClient{
		"east": newFaultRoutedClient(t, east, "east", inj),
		"west": newFaultRoutedClient(t, west, "west", inj),
	}
	cpDir := t.TempDir()
	mirrorCfg := func(origin string) kafka.MirrorConfig {
		return kafka.MirrorConfig{
			Topics:         []string{topic},
			CheckpointPath: cpDir + "/" + origin + ".checkpoint",
			Origin:         origin,
			GlobalOrder:    true,
			FetchWait:      20 * time.Millisecond,
			RetryPause:     2 * time.Millisecond,
		}
	}
	// Each mirror consumes through its own fault-injected routed client, so
	// the east mirror rides the leader kill like any other client.
	eastMirror, err := kafka.NewMirrorMaker(newFaultRoutedClient(t, east, "east", inj), dst, mirrorCfg("east"))
	if err != nil {
		t.Fatal(err)
	}
	westMirror, err := kafka.NewMirrorMaker(newFaultRoutedClient(t, west, "west", inj), dst, mirrorCfg("west"))
	if err != nil {
		t.Fatal(err)
	}
	if err := eastMirror.Start(); err != nil {
		t.Fatal(err)
	}
	if err := westMirror.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(westMirror.Close)

	const perOrigin = 40
	payloads := map[string][]string{
		"east": gen.Payloads(seed, "kafka-mirror-east", perOrigin),
		"west": gen.Payloads(seed, "kafka-mirror-west", perOrigin),
	}

	var mu sync.Mutex
	acked := map[string][]consistency.ProducedMsg{}
	var eastAcked atomic.Int64

	// Seeded chaos #1: kill east's elected leader mid-produce.
	killAfter := int64(8 + seed%12)
	killed := make(chan string, 1)
	go func() {
		for eastAcked.Load() < killAfter {
			time.Sleep(time.Millisecond)
		}
		leader, err := east.LeaderOf(topic, 0)
		if err == nil {
			east.Kill(leader)
			killed <- leader
		} else {
			killed <- ""
		}
	}()

	const producers = 2
	var wg sync.WaitGroup
	for origin, client := range clients {
		for g := 0; g < producers; g++ {
			wg.Add(1)
			go func(origin string, client *kafka.RoutedClient, g int) {
				defer wg.Done()
				ps := payloads[origin]
				for i := g; i < len(ps); i += producers {
					deadline := time.Now().Add(20 * time.Second)
					for {
						off, err := client.Produce(topic, 0, kafka.NewMessageSet([]byte(ps[i])))
						if err == nil {
							mu.Lock()
							acked[origin] = append(acked[origin], consistency.ProducedMsg{Offset: off, Payload: ps[i]})
							mu.Unlock()
							if origin == "east" {
								eastAcked.Add(1)
							}
							break
						}
						if time.Now().After(deadline) {
							t.Errorf("%s produce %d never acknowledged across the failover: %v", origin, i, err)
							return
						}
					}
				}
			}(origin, client, g)
		}
	}

	// Seeded chaos #2: kill the east mirror mid-stream and restart it from
	// its checkpoint file — the redelivery window the checker must see as
	// duplicates, never loss.
	restartAfter := int64(5 + seed%10)
	restartDeadline := time.Now().Add(20 * time.Second)
	for eastMirror.Mirrored() < restartAfter {
		if time.Now().After(restartDeadline) {
			t.Fatalf("east mirror stuck at %d of %d messages before the planned restart",
				eastMirror.Mirrored(), restartAfter)
		}
		time.Sleep(time.Millisecond)
	}
	eastMirror.Close()
	restartedAt := eastMirror.Mirrored()
	eastMirror, err = kafka.NewMirrorMaker(newFaultRoutedClient(t, east, "east", inj), dst, mirrorCfg("east"))
	if err != nil {
		t.Fatal(err)
	}
	if err := eastMirror.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eastMirror.Close() })

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	deadKilled := <-killed
	if deadKilled == "" {
		t.Fatal("leader kill never happened; failover was not exercised")
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; verify run is vacuous")
	}

	// Wait until every acked message of both origins has reached the
	// aggregate, then freeze the log by closing the mirrors.
	covered := func() bool {
		seen := map[string]map[int64]bool{}
		for _, m := range drainMirrored(t, dst, topic) {
			s := seen[m.Origin]
			if s == nil {
				s = map[int64]bool{}
				seen[m.Origin] = s
			}
			if m.Sub == 0 {
				s[m.Seq] = true
			}
		}
		mu.Lock()
		defer mu.Unlock()
		for origin, msgs := range acked {
			for _, a := range msgs {
				if !seen[origin][a.Offset] {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(20 * time.Second)
	for !covered() {
		if time.Now().After(deadline) {
			t.Fatal("aggregate never covered every acked message")
		}
		time.Sleep(5 * time.Millisecond)
	}
	eastMirror.Close()
	westMirror.Close()

	mirrored := drainMirrored(t, dst, topic)
	err = consistency.CheckKafkaMirrored(consistency.MirroredPartition{
		Topic: topic, Partition: 0,
		Acked: acked, Mirrored: mirrored,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kafka mirror: %d+%d acked (%d in aggregate incl. duplicates), leader %s killed after %d acks, east mirror restarted at %d mirrored, under %s",
		len(acked["east"]), len(acked["west"]), len(mirrored), deadKilled, killAfter, restartedAt, inj)
}

// --- Databus -----------------------------------------------------------------

// streamObsConsumer records the full delivery/checkpoint observation stream.
type streamObsConsumer struct {
	inj *resilience.DeterministicInjector

	mu     sync.Mutex
	stream []consistency.StreamObs
}

func (c *streamObsConsumer) OnEvent(e databus.Event) error {
	if err := c.inj.Inject("consumer.onevent"); err != nil {
		return err
	}
	c.mu.Lock()
	c.stream = append(c.stream, consistency.StreamObs{SCN: e.SCN, EndOfTxn: e.EndOfTxn})
	c.mu.Unlock()
	return nil
}

func (c *streamObsConsumer) OnCheckpoint(scn int64) {
	c.mu.Lock()
	c.stream = append(c.stream, consistency.StreamObs{SCN: scn, Checkpoint: true})
	c.mu.Unlock()
}

// TestVerifyDatabusStream commits seeded multi-event transactions to a
// source, pulls them through a relay and a flaky client (dropped relay
// reads, failed first deliveries), and checks windowed SCN monotonicity of
// the whole observation stream: no rewinds, no phantom SCNs, checkpoints
// only on window boundaries, full delivery below the final checkpoint.
func TestVerifyDatabusStream(t *testing.T) {
	seed := verifySeed(t)
	src := databus.NewLogSource()

	const txns = 80
	payloads := gen.Payloads(seed, "databus", 3*txns)
	committed := make(map[int64]int, txns)
	var commitOrder []int64
	pi := 0
	for i := 0; i < txns; i++ {
		nEvents := 1 + (int(seed)+i)%3
		events := make([]databus.Event, nEvents)
		for j := range events {
			events[j] = databus.Event{
				Source:  "verify",
				Key:     []byte(fmt.Sprintf("k%d-%d", i, j)),
				Payload: []byte(payloads[pi]),
			}
			pi++
		}
		scn := src.Commit(events...)
		committed[scn] = nEvents
		commitOrder = append(commitOrder, scn)
	}

	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	relay.AttachSource(src, time.Millisecond)

	inj := resilience.NewInjector(seed)
	inj.Plan("relay.read", resilience.FaultPlan{DropProb: 0.3})
	inj.Plan("consumer.onevent", resilience.FaultPlan{ErrProb: 0.2})

	cons := &streamObsConsumer{inj: inj}
	client, err := databus.NewClient(databus.ClientConfig{
		Relay:      &flakyEventReader{inner: relay, inj: inj, op: "relay.read"},
		Consumer:   cons,
		BatchSize:  7, // deliberately splits transactions across batches
		Retries:    20,
		Retry:      verifyRetryPolicy(),
		PollExpiry: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	deadline := time.Now().Add(10 * time.Second)
	for client.SCN() < int64(txns) {
		if _, err := client.Poll(); err != nil {
			t.Fatalf("poll at SCN %d: %v", client.SCN(), err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("client stuck at SCN %d of %d", client.SCN(), txns)
		}
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; verify run is vacuous")
	}

	cons.mu.Lock()
	stream := append([]consistency.StreamObs(nil), cons.stream...)
	cons.mu.Unlock()
	if err := consistency.CheckSCNStream(committed, commitOrder, stream); err != nil {
		t.Fatal(err)
	}
	t.Logf("databus stream: %d txns, %d observations under %s", txns, len(stream), inj)
}
