// End-to-end observability test: a live Voldemort server plus a Databus
// relay, driven through their public client APIs, scraped over HTTP through
// the same debug mux every cmd/* server mounts. Asserts the acceptance
// criteria of the observability layer: non-zero request counters, a live
// lag gauge, both exposition formats, and working pprof endpoints.
package datainfra

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"datainfra/internal/cluster"
	"datainfra/internal/databus"
	"datainfra/internal/metrics"
	"datainfra/internal/trace"
	"datainfra/internal/versioned"
	"datainfra/internal/voldemort"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts the value of a plain (unlabelled) sample from the
// text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in scrape", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", name, m[1])
	}
	return v
}

func TestObservabilityEndToEnd(t *testing.T) {
	// A live Voldemort node serving the socket protocol.
	clus := cluster.Uniform("obs-e2e", 1, 8, 0)
	srv, err := voldemort.NewServer(voldemort.ServerConfig{NodeID: 0, Cluster: clus})
	if err != nil {
		t.Fatal(err)
	}
	def := (&cluster.StoreDef{
		Name: "obs", Replication: 1, RequiredReads: 1, RequiredWrites: 1,
	}).WithDefaults()
	if err := srv.AddStore(def); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Client traffic with a pinned trace ID — the ID minted at the client
	// edge must be observable at the serving store.
	st := voldemort.DialStore("obs", addr, time.Second)
	defer st.Close()
	id := trace.NewID()
	st.SetTrace(id)
	const writes = 5
	for i := 0; i < writes; i++ {
		key := []byte{byte('a' + i)}
		if err := st.Put(key, versioned.New([]byte("v")), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get(key, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !srv.SawTrace(id) {
		t.Fatalf("client trace %s not observed at the serving store", id)
	}

	// A relay with a lagging consumer: five transactions appended, none
	// pulled, so the client-lag gauge reads 5.
	relay := databus.NewRelay(databus.RelayConfig{})
	defer relay.Close()
	lagClient, err := databus.NewClient(databus.ClientConfig{
		Relay:    relay,
		Consumer: databus.ConsumerFuncs{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lagClient.Close()
	for scn := int64(1); scn <= 5; scn++ {
		err := relay.Append(databus.Txn{SCN: scn, Events: []databus.Event{
			{Source: "obs", Key: []byte("k"), Payload: []byte("p")},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	metrics.RegisterGaugeFunc("databus_client_lag_scn",
		"SCN distance between the relay head and the bootstrap consumer",
		func() int64 { return relay.LastSCN() - lagClient.SCN() })

	// Scrape through the same mux every cmd/* server mounts.
	obs := httptest.NewServer(metrics.NewDebugMux(metrics.Default))
	defer obs.Close()

	text := scrape(t, obs.URL+"/metrics")
	if got := metricValue(t, text, "voldemort_routed_get_total"); got < 1 {
		// Socket traffic bypasses the router; the server-side counter below
		// is the live one here, but the routed counters must still exist.
		t.Logf("voldemort_routed_get_total = %v (no routed traffic in this test)", got)
	}
	putRE := regexp.MustCompile(`(?m)^voldemort_server_requests_total\{op="put"\} (\d+)$`)
	m := putRE.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("voldemort_server_requests_total{op=\"put\"} missing from scrape:\n%s", text)
	}
	if n, _ := strconv.Atoi(m[1]); n < writes {
		t.Fatalf("server put counter = %s, want >= %d", m[1], writes)
	}
	if got := metricValue(t, text, "databus_client_lag_scn"); got != 5 {
		t.Fatalf("databus_client_lag_scn = %v, want 5", got)
	}
	if got := metricValue(t, text, "databus_relay_last_scn"); got < 5 {
		t.Fatalf("databus_relay_last_scn = %v, want >= 5", got)
	}
	if !strings.Contains(text, "# TYPE voldemort_server_requests_total counter") {
		t.Fatal("text exposition lacks TYPE comments")
	}

	// JSON exposition carries the same samples.
	var parsed struct {
		Metrics []struct {
			Name  string `json:"name"`
			Kind  string `json:"kind"`
			Value *int64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(scrape(t, obs.URL+"/metrics.json")), &parsed); err != nil {
		t.Fatalf("metrics.json did not parse: %v", err)
	}
	found := map[string]bool{}
	for _, s := range parsed.Metrics {
		found[s.Name] = true
	}
	for _, want := range []string{
		"voldemort_server_requests_total", "databus_client_lag_scn",
		"resilience_retry_attempts_total", "kafka_produce_requests_total",
	} {
		if !found[want] {
			t.Fatalf("metrics.json missing %s", want)
		}
	}

	// Liveness and profiler endpoints on the same mux.
	if body := scrape(t, obs.URL+"/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %q", body)
	}
	if body := scrape(t, obs.URL+"/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Fatal("pprof goroutine endpoint not serving")
	}
}
